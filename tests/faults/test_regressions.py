"""Regression tests for the handshake races and leaks this PR fixes.

Each test pins one bug the fault-injection campaign exposed; each
fails against the pre-fix code (the pre-fix behaviour is noted inline).
"""

import pytest

from repro.cluster import CostModel
from repro.errors import ConduitError
from repro.gasnet.messages import ConnectRequest
from repro.ib.types import Opcode
from repro.sim import spawn

from ..gasnet.conftest import build_conduit_rig
from .conftest import build_ud_rig, ud_send


class TestRNRRedeliveryToDestroyedQP:
    def test_delayed_redelivery_is_dropped_not_fatal(self):
        """An RNR redelivery scheduled while the QP was INIT must be
        dropped when it fires after the QP was destroyed (collision
        loser tearing down its half-open QP).  Pre-fix: QPStateError
        crashed the whole simulation."""
        rig = build_ud_rig()
        ctx0, ctx1 = rig.ctxs

        def scenario():
            scq0, rcq0 = ctx0.create_cq(), ctx0.create_cq()
            scq1, rcq1 = ctx1.create_cq(), ctx1.create_cq()
            qp0 = yield from ctx0.create_rc_qp(scq0, rcq0)
            qp1 = yield from ctx1.create_rc_qp(scq1, rcq1)
            yield from ctx0.modify_init(qp0)
            yield from ctx0.modify_rtr(qp0, qp1.address)
            yield from ctx0.modify_rts(qp0)
            # Receiver parked in INIT: the incoming send triggers the
            # RNR retry path (redelivery in RNR_RETRY_US = 25us).
            yield from ctx1.modify_init(qp1)
            yield from ctx0.post_send(qp0, "hello", 32)
            yield 10.0       # after arrival, before the redelivery
            qp1.destroy()

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()        # pre-fix: raises QPStateError here
        assert rig.counters["rc.rnr_retries"] >= 1
        assert rig.counters["rc.dropped_dead_qp"] == 1


class TestRetryAccounting:
    def test_counter_and_message_reflect_actual_sends(self):
        """With ud_max_retries=4 the client performs 4 sends (1 initial
        + 3 retransmissions) and then one grace wait.  Pre-fix the
        error claimed "4 retries" and connect_retries counted 5 —
        including the initial send and the send-free grace pass."""
        cost = CostModel().evolve(
            ud_loss_prob=1.0, ud_duplicate_prob=0.0,
            ud_max_retries=4, ud_retry_timeout_us=10.0,
        )
        rig = build_conduit_rig(npes=2, cost=cost)
        c0, _ = rig.conduits
        errors = []

        def pe0():
            try:
                yield from c0.am_send(1, "ping")
            except ConduitError as exc:
                errors.append(str(exc))

        spawn(rig.sim, pe0(), name="pe0")
        rig.sim.run()
        assert len(errors) == 1
        assert "4 sends" in errors[0]
        assert "3 retransmissions" in errors[0]
        assert rig.counters["conduit.connect_retries"] == 3
        assert rig.counters["conduit.connect_requests"] == 1


class TestServingEviction:
    COST = dict(ud_loss_prob=0.0, ud_duplicate_prob=0.0,
                ud_max_retries=3, ud_retry_timeout_us=200.0)

    def test_serving_cache_is_evicted_after_retry_window(self):
        """Pre-fix, every served peer left a ConnectReply (with its
        exchange payload) in ``_serving`` for the lifetime of the job."""
        rig = build_conduit_rig(npes=2, cost=CostModel().evolve(**self.COST))
        c0, c1 = rig.conduits
        got = []
        c1.register_handler("ping", lambda src, data: got.append(src))

        def pe0():
            yield from c0.am_send(1, "ping")

        spawn(rig.sim, pe0(), name="pe0")
        rig.sim.run()
        assert got == [0]
        assert c1._serving == {}
        assert rig.counters["conduit.serving_evicted"] == 1

    def test_idempotent_retransmit_inside_window_then_silence(self):
        """Duplicate requests still get the cached reply while the
        client could legitimately be retransmitting; after the TTL the
        entry is gone and stale duplicates are ignored."""
        rig = build_conduit_rig(npes=2, cost=CostModel().evolve(**self.COST))
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)
        observed = {}

        def scenario():
            yield from c0.am_send(1, "ping")
            # The handshake itself may already have counted duplicate
            # requests (client retransmissions racing the serve);
            # measure our injected duplicates relative to that.
            observed["base"] = rig.counters["conduit.dup_requests"]
            dup = ConnectRequest(
                src_rank=0, rc_addr=c0._conns[1].qp.address, attempt=9
            )
            # In-window duplicate: server retransmits the cached reply.
            yield from c1._on_connect_request(dup)
            observed["in_window"] = rig.counters["conduit.dup_requests"]
            yield 2000.0  # TTL = (3+1)*200us, long past it
            observed["serving_after_ttl"] = dict(c1._serving)
            # Stale duplicate after eviction: nothing to retransmit.
            yield from c1._on_connect_request(dup)
            observed["after_ttl"] = rig.counters["conduit.dup_requests"]

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()
        assert observed["in_window"] == observed["base"] + 1
        assert observed["serving_after_ttl"] == {}
        assert observed["after_ttl"] == observed["in_window"]
        # The retransmitted reply reached the (connected) client and
        # was dropped there as a duplicate — not treated as new.
        assert rig.counters["conduit.dup_replies"] >= 1


class TestRecvOpcodeAndDupDelay:
    def test_ud_completions_use_recv_opcode(self):
        """Pre-fix, UD receive completions carried Opcode.SEND."""
        rig = build_ud_rig()
        sender_wcs = []

        def sender():
            yield from ud_send(rig, 0, 1, "msg")
            sender_wcs.extend(rig.send_cqs[0].drain())

        spawn(rig.sim, sender(), name="sender")
        rig.sim.run()
        assert [p for p, _ in rig.arrivals[1]] == ["msg"]
        assert rig.recv_wcs[1][0].opcode is Opcode.RECV
        assert sender_wcs[0].opcode is Opcode.SEND

    def test_rc_completions_use_recv_opcode(self):
        rig = build_ud_rig()
        ctx0, ctx1 = rig.ctxs
        wcs = {}

        def scenario():
            scq0, rcq0 = ctx0.create_cq(), ctx0.create_cq()
            scq1, rcq1 = ctx1.create_cq(), ctx1.create_cq()
            qp0 = yield from ctx0.create_rc_qp(scq0, rcq0)
            qp1 = yield from ctx1.create_rc_qp(scq1, rcq1)
            yield from ctx0.connect_rc_qp(qp0, qp1.address)
            yield from ctx1.connect_rc_qp(qp1, qp0.address)
            yield from ctx0.post_send(qp0, "payload", 32)
            wcs["recv"] = yield rcq1.wait()
            wcs["ack"] = yield scq0.wait()

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()
        assert wcs["recv"].opcode is Opcode.RECV
        assert wcs["recv"].data == "payload"
        assert wcs["ack"].opcode is Opcode.SEND

    @pytest.mark.parametrize("delay", [7.5, 1.25])
    def test_duplicate_delay_comes_from_cost_model(self, delay):
        """Pre-fix, the baseline duplicate's extra delay was a literal
        3.0 in the fabric regardless of the cost model."""
        cost = CostModel().evolve(
            ud_loss_prob=0.0, ud_duplicate_prob=1.0,
            ud_duplicate_delay_us=delay,
        )
        rig = build_ud_rig(cost=cost)
        spawn(rig.sim, ud_send(rig, 0, 1, "msg"), name="sender")
        rig.sim.run()
        got = rig.arrivals[1]
        assert [p for p, _ in got] == ["msg", "msg"]
        # The copies serialise back-to-back on the egress link, so the
        # observed gap is delay minus one 64B serialisation slot.
        assert got[1][1] - got[0][1] == pytest.approx(delay, abs=0.1)
        assert rig.counters["fabric.ud_duplicated"] == 1

"""Conduit-level test rig: conduits wired over the IB + PMI substrates."""

from dataclasses import dataclass
from typing import List

import pytest

from repro.cluster import Cluster, CostModel
from repro.gasnet import ConduitNetwork, OnDemandConduit, StaticConduit
from repro.ib import HCA, Fabric, VerbsContext
from repro.pmi import PMIClient, PMIDomain
from repro.sim import Counters, RngRegistry, Simulator, spawn


@dataclass
class CRig:
    sim: Simulator
    cluster: Cluster
    counters: Counters
    ctxs: List[VerbsContext]
    conduits: list
    pmi: List[PMIClient]


def build_conduit_rig(npes=2, ppn=1, mode="on-demand", cost=None, seed=3,
                      ready=True):
    """Assemble conduits with endpoints initialised and directory set.

    With ``ready=True`` every conduit is marked ready and the UD
    directory is installed directly (no PMI), so handshake tests can
    focus on the protocol itself.
    """
    cost = cost or CostModel().evolve(ud_loss_prob=0.0, ud_duplicate_prob=0.0)
    sim = Simulator()
    cluster = Cluster(npes=npes, ppn=ppn, cost=cost, name="crig")
    counters = Counters()
    rng = RngRegistry(seed)
    fabric = Fabric(sim, cluster, rng, counters)
    hcas = [
        HCA(sim, fabric, node=n, lid=0x100 + n, cost=cost, counters=counters)
        for n in range(cluster.nnodes)
    ]
    ctxs = [
        VerbsContext(sim, hcas[cluster.node_of(r)], r, cost, counters)
        for r in range(npes)
    ]
    domain = PMIDomain(sim, cluster, counters)
    pmi = [PMIClient(domain, r) for r in range(npes)]
    network = ConduitNetwork()
    cls = OnDemandConduit if mode == "on-demand" else StaticConduit
    conduits = [
        cls(sim, network, ctxs[r], cluster, pmi[r], r) for r in range(npes)
    ]

    def boot(sim):
        for c in conduits:
            yield from c.init_endpoint()
        directory = {r: conduits[r].ud_address for r in range(npes)}
        for c in conduits:
            c.set_ud_directory(directory)
            if ready:
                c.mark_ready()

    spawn(sim, boot(sim), name="boot")
    sim.run()
    return CRig(sim, cluster, counters, ctxs, conduits, pmi)


@pytest.fixture
def crig2():
    return build_conduit_rig(npes=2, ppn=1)


@pytest.fixture
def crig4():
    """4 PEs, 2 nodes x 2 ppn (on-demand)."""
    return build_conduit_rig(npes=4, ppn=2)

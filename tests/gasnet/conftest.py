"""Conduit-level test rig: conduits wired over the IB + PMI substrates."""

import os
from dataclasses import dataclass
from typing import List, Optional

import pytest

from repro.check import CheckPlan, Sanitizer
from repro.cluster import Cluster, CostModel
from repro.faults import FaultInjector, FaultPlan
from repro.gasnet import ConduitNetwork, OnDemandConduit, StaticConduit
from repro.ib import HCA, Fabric, VerbsContext
from repro.pmi import PMIClient, PMIDomain
from repro.sim import Counters, RngRegistry, Simulator, Tracer, spawn


@dataclass
class CRig:
    sim: Simulator
    cluster: Cluster
    counters: Counters
    ctxs: List[VerbsContext]
    conduits: list
    pmi: List[PMIClient]
    network: Optional[ConduitNetwork] = None
    faults: Optional[FaultInjector] = None
    check: Optional[Sanitizer] = None

    @property
    def tracer(self) -> Tracer:
        return self.network.tracer


def build_conduit_rig(npes=2, ppn=1, mode="on-demand", cost=None, seed=3,
                      ready=True, faults=None, trace=False,
                      pmi_directory=False, check=None, lifecycle=None,
                      scheduler="calendar"):
    """Assemble conduits with endpoints initialised and directory set.

    With ``ready=True`` every conduit is marked ready and the UD
    directory is installed directly (no PMI), so handshake tests can
    focus on the protocol itself.  ``pmi_directory=True`` instead
    resolves the directory lazily through a PMIX_Iallgather (so PMI
    fault plans bite).  ``faults`` installs a
    :class:`repro.faults.FaultPlan` across the fabric, HCAs and PMI
    daemons; ``trace=True`` enables the protocol tracer.  ``check``
    installs a :class:`repro.check.CheckPlan` sanitizer (``REPRO_CHECK=1``
    in the environment arms a default non-strict plan on every rig, so
    the whole conduit suite doubles as a sanitizer soak).
    """
    cost = cost or CostModel().evolve(ud_loss_prob=0.0, ud_duplicate_prob=0.0)
    sim = Simulator(scheduler=scheduler)
    cluster = Cluster(npes=npes, ppn=ppn, cost=cost, name="crig")
    counters = Counters()
    rng = RngRegistry(seed)
    fabric = Fabric(sim, cluster, rng, counters)
    hcas = [
        HCA(sim, fabric, node=n, lid=0x100 + n, cost=cost, counters=counters)
        for n in range(cluster.nnodes)
    ]
    ctxs = [
        VerbsContext(sim, hcas[cluster.node_of(r)], r, cost, counters)
        for r in range(npes)
    ]
    domain = PMIDomain(sim, cluster, counters)
    pmi = [PMIClient(domain, r) for r in range(npes)]
    injector = None
    if faults is not None:
        if not isinstance(faults, FaultPlan):
            faults = FaultPlan.from_dict(faults)
        injector = FaultInjector(faults, sim, rng, counters).install(
            fabric=fabric, hcas=hcas, pmi_domain=domain
        )
    if check is None and os.environ.get("REPRO_CHECK", "").strip() not in ("", "0"):
        # Soak mode: run the whole conduit suite sanitized, collecting
        # (not raising) so legitimately fault-injected runs complete.
        check = CheckPlan(name="env-soak", strict=False)
    if check is True:
        check = CheckPlan()
    elif check is False:
        check = None
    elif isinstance(check, dict):
        check = CheckPlan.from_dict(check)
    sanitizer = None
    if check is not None:
        sanitizer = Sanitizer(check, sim).install(
            hcas=hcas, pmi_domain=domain
        )
    network = ConduitNetwork()
    network.check = sanitizer
    network.tracer = Tracer(sim, enabled=trace)
    cls = OnDemandConduit if mode == "on-demand" else StaticConduit
    conduits = [
        cls(sim, network, ctxs[r], cluster, pmi[r], r) for r in range(npes)
    ]
    if lifecycle is not None and mode == "on-demand":
        for c in conduits:
            c.install_lifecycle(lifecycle)

    def boot(sim):
        for c in conduits:
            yield from c.init_endpoint()
        if pmi_directory:
            for r, c in enumerate(conduits):
                c.set_ud_directory_handle(pmi[r].iallgather(c.ud_address))
        else:
            directory = {r: conduits[r].ud_address for r in range(npes)}
            for c in conduits:
                c.set_ud_directory(directory)
        if ready:
            for c in conduits:
                c.mark_ready()

    spawn(sim, boot(sim), name="boot")
    sim.run()
    return CRig(sim, cluster, counters, ctxs, conduits, pmi,
                network=network, faults=injector, check=sanitizer)


@pytest.fixture
def crig2():
    return build_conduit_rig(npes=2, ppn=1)


@pytest.fixture
def crig4():
    """4 PEs, 2 nodes x 2 ppn (on-demand)."""
    return build_conduit_rig(npes=4, ppn=2)

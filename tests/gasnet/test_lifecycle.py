"""Connection lifecycle: idle eviction, drain handshake, reconnect.

Covers the retirement protocol (Fig. 4 run in reverse) the way
test_ondemand_protocol covers establishment: policy selection as a pure
function, reaper-driven eviction, transparent reconnect-after-evict,
the Disconnect/DisconnectAck retry-and-idempotence discipline under
fault plans, and both collision shapes (disconnect-vs-connect and
disconnect-vs-disconnect) on both schedulers.
"""

import pytest

from repro.check import CheckPlan
from repro.cluster import CostModel
from repro.errors import ConfigError
from repro.faults import FaultPlan, UDFault
from repro.gasnet import LifecyclePolicy, select_victims
from repro.sim import spawn

from .conftest import build_conduit_rig

FAST_RETRY = dict(ud_loss_prob=0.0, ud_duplicate_prob=0.0,
                  ud_max_retries=3, ud_retry_timeout_us=200.0)

#: Tight reaper so tests evict within a few simulated ms.
FAST_REAP = LifecyclePolicy(idle_timeout_us=1_000.0, scan_interval_us=250.0)


def _rc_qps_alive(rig):
    return [
        qp
        for ctx in rig.ctxs
        for qp in ctx.hca._qps.values()
        if getattr(qp, "is_rc", False)
    ]


def _drive(rig, gen, name="scenario", for_us=None):
    """Spawn and run.  With an *enabled* policy the reaper ticks until
    shutdown, so ``sim.run()`` never drains — bound those runs with
    ``for_us`` (relative horizon)."""
    spawn(rig.sim, gen, name=name)
    if for_us is None:
        rig.sim.run()
    else:
        rig.sim.run(until=rig.sim.now + for_us)


# ----------------------------------------------------------------------
# policy object + victim selection (no simulator)
# ----------------------------------------------------------------------
class TestLifecyclePolicy:
    def test_defaults_round_trip(self):
        policy = LifecyclePolicy()
        assert policy.enabled and policy.policy == "lru"
        assert LifecyclePolicy.from_dict(policy.as_dict()) == policy

    def test_validation(self):
        with pytest.raises(ConfigError, match="policy"):
            LifecyclePolicy(policy="mru")
        with pytest.raises(ConfigError, match="idle_timeout_us"):
            LifecyclePolicy(idle_timeout_us=0)
        with pytest.raises(ConfigError, match="scan_interval_us"):
            LifecyclePolicy(scan_interval_us=-1)
        with pytest.raises(ConfigError, match="max_connections"):
            LifecyclePolicy(max_connections=0)
        with pytest.raises(ConfigError, match="credits"):
            LifecyclePolicy(credits=0)
        with pytest.raises(ConfigError, match="drain_poll_us"):
            LifecyclePolicy(drain_poll_us=0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown LifecyclePolicy"):
            LifecyclePolicy.from_dict({"ttl": 5})

    def test_lru_selects_only_expired_oldest_first(self):
        policy = LifecyclePolicy(idle_timeout_us=100.0)
        candidates = [(3, 950.0, 0), (1, 800.0, 0), (2, 890.0, 0)]
        assert select_victims(1000.0, candidates, policy) == [1, 2]

    def test_selection_ignores_iteration_order(self):
        policy = LifecyclePolicy(idle_timeout_us=100.0)
        a = [(5, 10.0, 0), (2, 20.0, 0), (9, 30.0, 0)]
        assert (select_victims(500.0, a, policy)
                == select_victims(500.0, list(reversed(a)), policy)
                == [5, 2, 9])

    def test_credit_selects_exhausted(self):
        policy = LifecyclePolicy(policy="credit")
        candidates = [(1, 800.0, 0), (2, 100.0, 2), (3, 900.0, 0)]
        assert select_victims(1000.0, candidates, policy) == [1, 3]

    def test_capacity_overflow_evicts_lru_extras(self):
        policy = LifecyclePolicy(idle_timeout_us=1e9, max_connections=2)
        candidates = [(1, 300.0, 0), (2, 100.0, 0), (3, 200.0, 0)]
        # Nothing idle-expired, but 3 survivors > cap 2: oldest goes.
        assert select_victims(1000.0, candidates, policy) == [2]


# ----------------------------------------------------------------------
# reaper-driven eviction + reconnect
# ----------------------------------------------------------------------
class TestIdleEviction:
    def test_idle_connection_is_reaped_on_both_sides(self):
        rig = build_conduit_rig(npes=2, lifecycle=FAST_REAP, check=True)
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")
            assert 1 in c0._conns and 0 in c1._conns
            yield 5_000.0  # several idle_timeouts with no traffic

        _drive(rig, scenario(), for_us=20_000.0)
        assert c0._conns == {} and c1._conns == {}
        assert c0._draining == {} and c1._draining == {}
        assert _rc_qps_alive(rig) == []
        assert rig.counters["conduit.evictions"] >= 1
        assert rig.counters["conduit.evicted_by_peer"] >= 1
        assert rig.counters["conduit.disconnect_timeouts"] == 0
        assert rig.check.violations == []

    def test_reconnect_after_evict_is_transparent(self):
        rig = build_conduit_rig(npes=2, lifecycle=FAST_REAP, check=True)
        c0, c1 = rig.conduits
        pings = []
        c1.register_handler("ping", lambda src, data: pings.append(data))

        def scenario():
            yield from c0.am_send(1, "ping", data="first")
            yield 5_000.0  # reaper retires the pair
            assert 1 not in c0._conns
            yield from c0.am_send(1, "ping", data="second")

        _drive(rig, scenario(), for_us=30_000.0)
        assert pings == ["first", "second"]
        assert rig.counters["conduit.reconnects"] >= 1
        assert c0._conn_gens[1] == 2
        assert rig.check.violations == []

    def test_traffic_refreshes_idleness(self):
        """A connection touched every few hundred us never idles out."""
        rig = build_conduit_rig(npes=2, lifecycle=FAST_REAP)
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            for _ in range(10):
                yield from c0.am_send(1, "ping")
                yield 400.0  # < idle_timeout_us
            # Still connected, and never evicted while traffic flowed.
            assert 1 in c0._conns
            assert rig.counters["conduit.evictions"] == 0

        _drive(rig, scenario(), for_us=20_000.0)

    def test_capacity_cap_evicts_down_to_limit(self):
        policy = LifecyclePolicy(idle_timeout_us=1e9, scan_interval_us=250.0,
                                 max_connections=1)
        rig = build_conduit_rig(npes=3, lifecycle=policy)
        c0, c1, c2 = rig.conduits
        for c in (c1, c2):
            c.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")
            yield from c0.am_send(2, "ping")
            assert len(c0._conns) == 2
            yield 2_000.0  # a few scans

        _drive(rig, scenario(), for_us=20_000.0)
        # Oldest (peer 1) evicted; the cap holds at steady state.
        assert list(c0._conns) == [2]
        assert rig.counters["conduit.evictions"] >= 1

    def test_credit_policy_spares_the_hot_peer(self):
        policy = LifecyclePolicy(policy="credit", credits=2,
                                 scan_interval_us=250.0)
        rig = build_conduit_rig(npes=3, lifecycle=policy)
        c0, c1, c2 = rig.conduits
        for c in (c1, c2):
            c.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")
            yield from c0.am_send(2, "ping")
            for _ in range(10):  # keep peer 1 hot; let peer 2 starve
                yield from c0.am_send(1, "ping")
                yield 200.0
            assert 1 in c0._conns and 2 not in c0._conns

        _drive(rig, scenario(), for_us=20_000.0)
        assert rig.counters["conduit.evictions"] >= 1

    def test_disabled_policy_is_never_installed(self):
        rig = build_conduit_rig(
            npes=2, lifecycle=LifecyclePolicy(enabled=False)
        )
        c0, c1 = rig.conduits
        assert c0.lifecycle is None and not c0._reaper_started
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")
            yield 10_000.0

        _drive(rig, scenario())
        assert 1 in c0._conns  # nothing reaps without a policy
        assert rig.counters["conduit.evictions"] == 0


# ----------------------------------------------------------------------
# drain handshake discipline under fault plans
# ----------------------------------------------------------------------
class TestDrainHandshakeFaults:
    def test_dropped_disconnect_is_retransmitted(self):
        cost = CostModel().evolve(**FAST_RETRY)
        plan = FaultPlan(
            name="drop-disc",
            ud=(UDFault("drop", kind="Disconnect", first_n=2),),
        )
        rig = build_conduit_rig(npes=2, cost=cost, faults=plan,
                                lifecycle=FAST_REAP, check=True)
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")
            yield 8_000.0

        _drive(rig, scenario(), for_us=30_000.0)
        assert rig.counters["faults.ud_dropped"] == 2
        assert rig.counters["conduit.disconnect_retries"] >= 1
        assert c0._conns == {} and c1._conns == {}
        assert _rc_qps_alive(rig) == []
        assert rig.check.violations == []

    def test_dropped_ack_reuses_cached_idempotent_ack(self):
        """Losing DisconnectAcks forces Disconnect retransmissions; the
        target re-acks from its cache instead of re-draining."""
        cost = CostModel().evolve(**FAST_RETRY)
        plan = FaultPlan(
            name="drop-disc-ack",
            ud=(UDFault("drop", kind="DisconnectAck", first_n=2),),
        )
        rig = build_conduit_rig(npes=2, cost=cost, faults=plan,
                                lifecycle=FAST_REAP, check=True)
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")
            yield 8_000.0

        _drive(rig, scenario(), for_us=30_000.0)
        assert rig.counters["faults.ud_dropped"] == 2
        # The retransmitted Disconnects hit an already-draining / drained
        # target: answered idempotently, never double-destroyed.
        assert rig.counters["conduit.dup_disconnects"] >= 1
        assert rig.counters["conduit.evicted_by_peer"] == 1
        assert c0._conns == {} and c1._conns == {}
        assert _rc_qps_alive(rig) == []
        assert rig.check.violations == []

    def test_kind_scoping_leaves_other_datagrams_alone(self):
        """A kind-scoped rule must not touch the establish handshake."""
        cost = CostModel().evolve(**FAST_RETRY)
        plan = FaultPlan(
            name="only-disc-acks",
            ud=(UDFault("drop", kind="DisconnectAck"),),
        )
        rig = build_conduit_rig(npes=2, cost=cost, faults=plan)
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")

        _drive(rig, scenario())
        # Establishment saw no drops at all (rule never matched).
        assert rig.counters["faults.ud_dropped"] == 0
        assert 1 in c0._conns


# ----------------------------------------------------------------------
# collisions (both schedulers: heap vs calendar event ordering)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
class TestCollisions:
    def test_connect_request_during_drain_is_parked(self, scheduler):
        """Disconnect-vs-ConnectRequest collision: PE 1 drains the pair
        but its DisconnectAck from PE 0 is lost, so PE 1 keeps
        retrying; PE 0 (its half already quiesced and gone) reconnects
        immediately, and that ConnectRequest lands while PE 1 is still
        mid-drain.  The drain wins — the request parks and is served
        fresh once the drain completes."""
        cost = CostModel().evolve(**FAST_RETRY)
        plan = FaultPlan(
            name="late-ack",
            ud=(UDFault("drop", kind="DisconnectAck", first_n=1),),
        )
        rig = build_conduit_rig(npes=2, cost=cost, scheduler=scheduler,
                                faults=plan, check=True)
        c0, c1 = rig.conduits
        pings = []
        c1.register_handler("ping", lambda src, data: pings.append(data))

        def warmup():
            yield from c0.am_send(1, "ping", data="warmup")

        _drive(rig, warmup(), name="warmup")

        def race():
            # Reconnect the instant our half of the drain is gone —
            # while the initiator, still waiting for its lost ack, has
            # the pair mid-drain.
            while 1 in c0._conns or 1 in c0._draining:
                yield 10.0
            yield from c0.am_send(1, "ping", data="raced")

        spawn(rig.sim, c1._disconnect(0, reason="test"), name="drain")
        spawn(rig.sim, race(), name="race")
        rig.sim.run()

        assert pings == ["warmup", "raced"]
        assert rig.counters["faults.ud_dropped"] == 1
        # The lost ack forced a Disconnect retransmission, answered
        # from the target's ack cache — no drain timeout.
        assert rig.counters["conduit.disconnect_retries"] >= 1
        assert rig.counters["conduit.dup_disconnects"] >= 1
        assert rig.counters["conduit.disconnect_timeouts"] == 0
        # The raced ConnectRequest parked behind the drain, then the
        # pair re-established as a fresh generation.
        assert rig.counters["conduit.requests_during_drain"] >= 1
        assert c0._draining == {} and c1._draining == {}
        assert 1 in c0._conns and 0 in c1._conns
        assert c0._conn_gens[1] == 2 and c1._conn_gens[0] == 2
        assert rig.check.violations == []

    def test_disconnect_disconnect_collision_lower_rank_wins(self, scheduler):
        cost = CostModel().evolve(**FAST_RETRY)
        rig = build_conduit_rig(npes=2, cost=cost, scheduler=scheduler,
                                check=True)
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def warmup():
            yield from c0.am_send(1, "ping")

        _drive(rig, warmup(), name="warmup")

        spawn(rig.sim, c0._disconnect(1, reason="test"), name="d0")
        spawn(rig.sim, c1._disconnect(0, reason="test"), name="d1")
        rig.sim.run()

        assert rig.counters["conduit.disconnect_collisions"] >= 1
        assert c0._conns == {} and c1._conns == {}
        assert c0._draining == {} and c1._draining == {}
        assert _rc_qps_alive(rig) == []
        # Exactly one pair was torn down, once.
        assert rig.counters["conduit.evictions"] == 2
        assert rig.counters["conduit.disconnect_timeouts"] == 0
        assert rig.check.violations == []

        # The pair is reusable afterwards.
        def reconnect():
            yield from c0.am_send(1, "ping")

        _drive(rig, reconnect(), name="reconnect")
        assert 1 in c0._conns and rig.counters["conduit.reconnects"] >= 1


# ----------------------------------------------------------------------
# shutdown interactions
# ----------------------------------------------------------------------
class TestShutdownWithLifecycle:
    def test_shutdown_waits_out_inflight_drain(self):
        """Finalize arriving mid-drain must wait for the handshake, not
        sweep a connection whose QP the drain is about to destroy."""
        cost = CostModel().evolve(**FAST_RETRY)
        rig = build_conduit_rig(npes=2, cost=cost, lifecycle=FAST_REAP,
                                check=True)
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")
            spawn(rig.sim, c0._disconnect(1, reason="test"), name="drain")
            yield 1.0  # the drain is now mid-handshake
            yield from c0.shutdown()
            yield from c1.shutdown()

        _drive(rig, scenario())
        assert c0._closed and c0._draining == {}
        assert _rc_qps_alive(rig) == []
        assert rig.check.violations == []

    def test_reaper_stops_after_shutdown(self):
        rig = build_conduit_rig(npes=2, lifecycle=FAST_REAP)
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")
            yield from c0.shutdown()
            yield from c1.shutdown()

        _drive(rig, scenario())
        before = dict(rig.counters.as_dict())
        rig.sim.run()  # drain any leftover reaper ticks
        assert rig.counters.as_dict() == before

"""Protocol tests for the on-demand connection handshake (paper Fig. 4)."""

import pytest

from repro.cluster import CostModel
from repro.errors import ConduitError
from repro.sim import spawn

from .conftest import build_conduit_rig


class TestBasicHandshake:
    def test_first_am_establishes_connection(self, crig2):
        c0, c1 = crig2.conduits
        got = []
        c1.register_handler("ping", lambda src, data: got.append((src, data)))

        def pe0(sim):
            yield from c0.am_send(1, "ping", data="hello", data_bytes=5)

        spawn(crig2.sim, pe0(crig2.sim))
        crig2.sim.run()
        assert got == [(0, "hello")]
        assert c0.is_connected(1) and c1.is_connected(0)
        assert c0.connection_count == 1

    def test_second_message_reuses_connection(self, crig2):
        c0, c1 = crig2.conduits
        c1.register_handler("ping", lambda src, data: None)
        marks = {}

        def pe0(sim):
            t0 = sim.now
            yield from c0.am_send(1, "ping")
            marks["first"] = sim.now - t0
            t1 = sim.now
            yield from c0.am_send(1, "ping")
            marks["second"] = sim.now - t1

        spawn(crig2.sim, pe0(crig2.sim))
        crig2.sim.run()
        # First message pays the handshake (QP transitions ~ 100s of us);
        # the second costs only a round trip.
        assert marks["first"] > 10 * marks["second"]
        assert crig2.counters["conduit.connections"] == 2  # one per side

    def test_both_sides_can_send_after_one_handshake(self, crig2):
        c0, c1 = crig2.conduits
        got = []
        c0.register_handler("pong", lambda src, data: got.append(("c0", src)))
        c1.register_handler("ping", lambda src, data: got.append(("c1", src)))

        def pe0(sim):
            yield from c0.am_send(1, "ping")

        def pe1(sim):
            yield sim.timeout(2000.0)  # after pe0's handshake completed
            yield from c1.am_send(0, "pong")

        spawn(crig2.sim, pe0(crig2.sim))
        spawn(crig2.sim, pe1(crig2.sim))
        crig2.sim.run()
        assert ("c1", 0) in got and ("c0", 1) in got
        # No second handshake happened:
        assert crig2.counters["conduit.connect_requests"] == 1

    def test_payload_piggybacked_both_directions(self, crig2):
        c0, c1 = crig2.conduits
        c0.set_exchange_payload(b"segs-of-0")
        c1.set_exchange_payload(b"segs-of-1")
        received = {}
        c0.on_peer_payload(lambda peer, data: received.setdefault((0, peer), data))
        c1.on_peer_payload(lambda peer, data: received.setdefault((1, peer), data))
        c1.register_handler("ping", lambda src, data: None)

        def pe0(sim):
            yield from c0.am_send(1, "ping")

        spawn(crig2.sim, pe0(crig2.sim))
        crig2.sim.run()
        # Server (PE1) learned client's blob from the request; client
        # (PE0) learned the server's from the reply.
        assert received[(1, 0)] == b"segs-of-0"
        assert received[(0, 1)] == b"segs-of-1"

    def test_concurrent_callers_share_one_handshake(self, crig2):
        c0, c1 = crig2.conduits
        c1.register_handler("ping", lambda src, data: None)

        def caller(sim):
            yield from c0.am_send(1, "ping")

        for _ in range(4):
            spawn(crig2.sim, caller(crig2.sim))
        crig2.sim.run()
        assert crig2.counters["conduit.connect_requests"] == 1
        assert c0.connection_count == 1


class TestCollision:
    def test_simultaneous_connect_yields_single_connection_pair(self, crig2):
        c0, c1 = crig2.conduits
        c0.register_handler("m", lambda src, data: None)
        c1.register_handler("m", lambda src, data: None)

        def pe(sim, src, dst):
            yield from src.am_send(dst.rank, "m")

        spawn(crig2.sim, pe(crig2.sim, c0, c1))
        spawn(crig2.sim, pe(crig2.sim, c1, c0))
        crig2.sim.run()
        assert c0.is_connected(1) and c1.is_connected(0)
        # Exactly one RC QP per side despite two initiators.
        assert crig2.ctxs[0].rc_qps_created == 1
        assert crig2.ctxs[1].rc_qps_created == 1
        assert (
            crig2.counters["conduit.collisions_served"] >= 1
            or crig2.counters["conduit.collisions_ignored"] >= 1
        )

    def test_collision_connection_carries_traffic_both_ways(self, crig2):
        c0, c1 = crig2.conduits
        got = []
        c0.register_handler("m", lambda src, data: got.append((0, src, data)))
        c1.register_handler("m", lambda src, data: got.append((1, src, data)))

        def pe(sim, src, dst, tag):
            yield from src.am_send(dst.rank, "m", data=tag)
            yield from src.am_send(dst.rank, "m", data=tag + "-2")

        spawn(crig2.sim, pe(crig2.sim, c0, c1, "a"))
        spawn(crig2.sim, pe(crig2.sim, c1, c0, "b"))
        crig2.sim.run()
        assert (1, 0, "a") in got and (0, 1, "b") in got
        assert (1, 0, "a-2") in got and (0, 1, "b-2") in got


class TestLossRecovery:
    def test_lost_requests_are_retransmitted(self):
        # ~50% UD loss: the handshake must still converge via retries.
        cost = CostModel().evolve(ud_loss_prob=0.5, ud_duplicate_prob=0.0)
        rig = build_conduit_rig(npes=2, cost=cost, seed=11)
        c0, c1 = rig.conduits
        got = []
        c1.register_handler("ping", lambda src, data: got.append(src))

        def pe0(sim):
            yield from c0.am_send(1, "ping")

        spawn(rig.sim, pe0(rig.sim))
        rig.sim.run()
        assert got == [0]
        assert c0.is_connected(1)

    def test_duplicated_packets_are_idempotent(self):
        cost = CostModel().evolve(ud_loss_prob=0.0, ud_duplicate_prob=1.0)
        rig = build_conduit_rig(npes=2, cost=cost, seed=5)
        c0, c1 = rig.conduits
        got = []
        c1.register_handler("ping", lambda src, data: got.append(src))

        def pe0(sim):
            yield from c0.am_send(1, "ping")

        spawn(rig.sim, pe0(rig.sim))
        rig.sim.run()
        assert got == [0]
        assert rig.ctxs[1].rc_qps_created == 1  # dup request served once

    def test_connect_fails_after_retry_exhaustion(self):
        cost = CostModel().evolve(
            ud_loss_prob=1.0, ud_duplicate_prob=0.0, ud_max_retries=3,
            ud_retry_timeout_us=10.0,
        )
        rig = build_conduit_rig(npes=2, cost=cost)
        c0, _ = rig.conduits
        failures = []

        def pe0(sim):
            try:
                yield from c0.am_send(1, "ping")
            except ConduitError:
                failures.append(True)

        spawn(rig.sim, pe0(rig.sim))
        rig.sim.run()
        assert failures == [True]


class TestServerNotReady:
    def test_request_held_until_mark_ready(self):
        rig = build_conduit_rig(npes=2, ready=False)
        c0, c1 = rig.conduits
        c0.mark_ready()
        got = []
        c1.register_handler("ping", lambda src, data: got.append(sim_now()))

        sim = rig.sim

        def sim_now():
            return sim.now

        def pe0(sim):
            yield from c0.am_send(1, "ping")

        def pe1_becomes_ready(sim):
            yield sim.timeout(5000.0)
            c1.mark_ready()

        spawn(sim, pe0(sim))
        spawn(sim, pe1_becomes_ready(sim))
        sim.run()
        assert len(got) == 1
        assert got[0] >= 5000.0  # delivery waited for readiness
        assert rig.counters["conduit.requests_held"] >= 1

    def test_retransmissions_while_held_do_not_double_serve(self):
        cost = CostModel().evolve(
            ud_loss_prob=0.0, ud_duplicate_prob=0.0, ud_retry_timeout_us=100.0
        )
        rig = build_conduit_rig(npes=2, cost=cost, ready=False)
        c0, c1 = rig.conduits
        c0.mark_ready()
        c1.register_handler("ping", lambda src, data: None)
        sim = rig.sim

        def pe0(sim):
            yield from c0.am_send(1, "ping")

        def pe1(sim):
            yield sim.timeout(1000.0)  # ~10 retransmissions pile up
            c1.mark_ready()

        spawn(sim, pe0(sim))
        spawn(sim, pe1(sim))
        sim.run()
        assert rig.ctxs[1].rc_qps_created == 1
        assert c0.is_connected(1) and c1.is_connected(0)


class TestIntraNode:
    def test_same_node_peers_do_not_connect(self, crig4):
        c0, c1 = crig4.conduits[0], crig4.conduits[1]  # same node
        got = []
        c1.register_handler("ping", lambda src, data: got.append(src))

        def pe0(sim):
            yield from c0.am_send(1, "ping")

        spawn(crig4.sim, pe0(crig4.sim))
        crig4.sim.run()
        assert got == [0]
        assert c0.connection_count == 0
        assert crig4.ctxs[0].rc_qps_created == 0
        assert crig4.counters["conduit.intra_am"] == 1

    def test_cross_node_still_connects(self, crig4):
        c0, c2 = crig4.conduits[0], crig4.conduits[2]  # different nodes
        c2.register_handler("ping", lambda src, data: None)

        def pe0(sim):
            yield from c0.am_send(2, "ping")

        spawn(crig4.sim, pe0(crig4.sim))
        crig4.sim.run()
        assert c0.is_connected(2)


class TestRMAOverConduit:
    def test_rdma_put_get_roundtrip_cross_node(self, crig2):
        c0, c1 = crig2.conduits
        ctx1 = crig2.ctxs[1]
        out = {}

        def pe(sim):
            addr = ctx1.mm.alloc(128)
            region = yield from ctx1.reg_mr(addr)
            yield from c0.rdma_put(1, b"payload!", region.addr, region.rkey)
            out["read"] = yield from c0.rdma_get(
                1, 8, region.addr, region.rkey
            )

        spawn(crig2.sim, pe(crig2.sim))
        crig2.sim.run()
        assert out["read"] == b"payload!"

    def test_atomic_over_conduit(self, crig2):
        c0, _ = crig2.conduits
        ctx1 = crig2.ctxs[1]
        out = []

        def pe(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            for _ in range(3):
                old = yield from c0.atomic(
                    1, "fetch_add", region.addr, region.rkey, operand=7
                )
                out.append(old)

        spawn(crig2.sim, pe(crig2.sim))
        crig2.sim.run()
        assert out == [0, 7, 14]

    def test_intra_node_put_bypasses_fabric(self, crig4):
        c0 = crig4.conduits[0]
        ctx1 = crig4.ctxs[1]  # same node as 0
        out = {}

        def pe(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            before = crig4.counters["fabric.packets"]
            yield from c0.rdma_put(1, b"shm", region.addr, region.rkey)
            out["fabric_delta"] = crig4.counters["fabric.packets"] - before
            out["value"] = ctx1.mm.read_local(region.addr, 3)

        spawn(crig4.sim, pe(crig4.sim))
        crig4.sim.run()
        assert out["fabric_delta"] == 0
        assert out["value"] == b"shm"

"""Tests for the static (full wire-up) conduit and segment machinery."""

import pytest

from repro.errors import ConduitError, ShmemError
from repro.gasnet import SegmentInfo, SegmentTable, decode_segments, encode_segments
from repro.sim import spawn

from .conftest import build_conduit_rig


def wire_all(rig):
    def boot(sim):
        for c in rig.conduits:
            yield from c.wireup()

    spawn(rig.sim, boot(rig.sim), name="wireup")
    rig.sim.run()


class TestStaticWireup:
    def test_use_before_wireup_rejected(self):
        rig = build_conduit_rig(npes=2, mode="static")
        c0, _ = rig.conduits

        def pe0(sim):
            with pytest.raises(ConduitError):
                yield from c0.am_send(1, "x")

        spawn(rig.sim, pe0(rig.sim))
        rig.sim.run()

    def test_wireup_charges_all_n_qps(self):
        rig = build_conduit_rig(npes=4, ppn=1, mode="static")
        wire_all(rig)
        for ctx in rig.ctxs:
            assert ctx.rc_qps_created == 4  # one per peer incl. self
            assert ctx.connections_established == 4

    def test_wireup_time_scales_with_npes(self):
        t = {}
        for n in (4, 8):
            rig = build_conduit_rig(npes=n, ppn=1, mode="static")
            start = rig.sim.now
            wire_all(rig)
            t[n] = rig.sim.now - start
        assert t[8] > 1.8 * t[4]

    def test_messaging_after_wireup_needs_no_handshake(self):
        rig = build_conduit_rig(npes=2, mode="static")
        wire_all(rig)
        c0, c1 = rig.conduits
        got = []
        c1.register_handler("m", lambda src, data: got.append(src))

        def pe0(sim):
            yield from c0.am_send(1, "m")

        spawn(rig.sim, pe0(rig.sim))
        rig.sim.run()
        assert got == [0]
        assert rig.counters["conduit.connect_requests"] == 0

    def test_materialization_is_instant_after_wireup(self):
        rig = build_conduit_rig(npes=3, ppn=1, mode="static")
        wire_all(rig)
        c0, _, c2 = rig.conduits
        marks = {}

        def pe0(sim):
            t0 = sim.now
            yield from c0.ensure_connected(2)
            marks["dt"] = sim.now - t0

        spawn(rig.sim, pe0(rig.sim))
        rig.sim.run()
        assert marks["dt"] == 0.0

    def test_rma_over_static_conduit(self):
        rig = build_conduit_rig(npes=2, mode="static")
        wire_all(rig)
        c0, _ = rig.conduits
        ctx1 = rig.ctxs[1]
        out = {}

        def pe(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            yield from c0.rdma_put(1, b"static!", region.addr, region.rkey)
            out["v"] = ctx1.mm.read_local(region.addr, 7)

        spawn(rig.sim, pe(rig.sim))
        rig.sim.run()
        assert out["v"] == b"static!"

    def test_teardown_charge_scales_with_npes(self):
        rig = build_conduit_rig(npes=8, ppn=1, mode="static")
        wire_all(rig)
        c0 = rig.conduits[0]
        marks = {}

        def pe0(sim):
            t0 = sim.now
            yield from c0.teardown_charge()
            marks["dt"] = sim.now - t0

        spawn(rig.sim, pe0(rig.sim))
        rig.sim.run()
        assert marks["dt"] == pytest.approx(8 * rig.cluster.cost.qp_destroy_us)


class TestSegmentCodec:
    def test_roundtrip(self):
        segs = [
            SegmentInfo(addr=0x100000, size=4096, rkey=0x1234),
            SegmentInfo(addr=0x200000, size=1 << 20, rkey=0x9999),
        ]
        assert decode_segments(encode_segments(segs)) == segs

    def test_empty_blob(self):
        assert decode_segments(b"") == []

    def test_garbage_length_rejected(self):
        with pytest.raises(ShmemError):
            decode_segments(b"123")

    def test_translate_maps_symmetric_offsets(self):
        remote = SegmentInfo(addr=0x9000, size=256, rkey=1)
        assert remote.translate(0x1010, local_base=0x1000) == 0x9010

    def test_translate_out_of_segment_rejected(self):
        remote = SegmentInfo(addr=0x9000, size=16, rkey=1)
        with pytest.raises(ShmemError):
            remote.translate(0x1020, local_base=0x1000)

    def test_table_unknown_peer(self):
        table = SegmentTable(rank=0)
        with pytest.raises(ShmemError):
            table.get(3)
        table.put(3, [SegmentInfo(1, 2, 3)])
        assert table.knows(3)
        assert len(table.get(3)) == 1

"""Randomised stress tests for the on-demand handshake under load."""

import numpy as np
import pytest

from repro.cluster import cluster_a
from repro.core import Job, RuntimeConfig

from ..shmem.conftest import FuncApp


def _random_comm_prog(k: int, seed: int):
    def prog(pe):
        f8 = np.dtype(np.int64).itemsize
        cells = pe.shmalloc(pe.npes * f8)
        yield from pe.barrier_all()
        rng = np.random.default_rng(seed + pe.mype)
        targets = rng.choice(pe.npes, size=k, replace=True)
        for t in targets:
            # Everyone writes its rank into slot [mype] of the target.
            yield from pe.put_value(int(t), cells + pe.mype * f8, pe.mype + 1)
        yield from pe.barrier_all()
        got = pe.view(cells, np.int64, pe.npes).copy()
        # Every nonzero slot i must contain i+1.
        writers = np.nonzero(got)[0]
        return all(got[i] == i + 1 for i in writers), len(writers)

    return prog


class TestHandshakeStress:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_dense_random_puts_all_land(self, seed):
        cfg = RuntimeConfig.proposed(heap_backing_kb=256)
        job = Job(npes=32, config=cfg, cluster=cluster_a(32, ppn=4))
        result = job.run(FuncApp(_random_comm_prog(k=12, seed=seed)))
        assert all(ok for ok, _ in result.app_results)
        # At least some cross-PE traffic actually happened.
        assert sum(n for _, n in result.app_results) > 32

    def test_stress_with_heavy_ud_loss(self):
        cfg = RuntimeConfig.proposed(heap_backing_kb=256)
        cluster = cluster_a(24, ppn=3)
        cluster.cost = cluster.cost.evolve(
            ud_loss_prob=0.25, ud_duplicate_prob=0.05
        )
        job = Job(npes=24, config=cfg, cluster=cluster)
        result = job.run(FuncApp(_random_comm_prog(k=8, seed=99)))
        assert all(ok for ok, _ in result.app_results)
        assert job.counters["conduit.connect_retries"] > 0

    def test_exactly_one_qp_per_connected_pair(self):
        """After arbitrary collisions, QP pairs must be consistent."""
        cfg = RuntimeConfig.proposed(heap_backing_kb=256)
        job = Job(npes=16, config=cfg, cluster=cluster_a(16, ppn=2))
        result = job.run(FuncApp(_random_comm_prog(k=10, seed=7)))
        assert all(ok for ok, _ in result.app_results)
        for rank, conduit in enumerate(job.conduits):
            for peer, conn in conduit._conns.items():
                peer_conn = job.conduits[peer]._conns.get(rank)
                assert peer_conn is not None, (rank, peer)
                # The two QPs reference each other.
                assert conn.qp.remote == peer_conn.qp.address
                assert peer_conn.qp.remote == conn.qp.address

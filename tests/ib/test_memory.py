"""Unit tests for memory registration and validated remote access."""

import numpy as np
import pytest

from repro.errors import MemoryRegistrationError, RemoteAccessError
from repro.ib.memory import MemoryManager


@pytest.fixture
def mm():
    return MemoryManager(rank=0)


class TestAllocation:
    def test_alloc_returns_distinct_page_aligned_addresses(self, mm):
        a = mm.alloc(100)
        b = mm.alloc(100)
        assert a != b
        assert a % 4096 == 0 and b % 4096 == 0
        assert b >= a + 4096

    def test_alloc_zero_or_negative_rejected(self, mm):
        with pytest.raises(ValueError):
            mm.alloc(0)
        with pytest.raises(ValueError):
            mm.alloc(-5)

    def test_buffer_is_zeroed(self, mm):
        addr = mm.alloc(64)
        assert not mm.buffer_of(addr).any()

    def test_buffer_of_unknown_addr(self, mm):
        with pytest.raises(MemoryRegistrationError):
            mm.buffer_of(0xDEAD)


class TestRegistration:
    def test_register_issues_unique_rkeys(self, mm):
        r1 = mm.register(mm.alloc(128))
        r2 = mm.register(mm.alloc(128))
        assert r1.rkey != r2.rkey
        assert mm.region_by_rkey(r1.rkey) is r1

    def test_double_register_rejected(self, mm):
        addr = mm.alloc(128)
        mm.register(addr)
        with pytest.raises(MemoryRegistrationError):
            mm.register(addr)

    def test_registered_bytes_tracked(self, mm):
        region = mm.register(mm.alloc(1000))
        assert mm.registered_bytes == 1000
        mm.deregister(region)
        assert mm.registered_bytes == 0

    def test_deregister_twice_rejected(self, mm):
        region = mm.register(mm.alloc(10))
        mm.deregister(region)
        with pytest.raises(MemoryRegistrationError):
            mm.deregister(region)

    def test_unknown_rkey(self, mm):
        with pytest.raises(RemoteAccessError):
            mm.region_by_rkey(0xBADBAD)


class TestLocalAccess:
    def test_write_then_read_roundtrip(self, mm):
        addr = mm.alloc(32)
        mm.write_local(addr + 4, b"hello")
        assert mm.read_local(addr + 4, 5) == b"hello"

    def test_out_of_range_access(self, mm):
        addr = mm.alloc(16)
        with pytest.raises(RemoteAccessError):
            mm.read_local(addr, 17)


class TestRemoteAccess:
    def test_rdma_write_within_region(self, mm):
        region = mm.register(mm.alloc(64))
        mm.rdma_write(region.addr + 8, region.rkey, b"\x01\x02\x03")
        assert mm.read_local(region.addr + 8, 3) == b"\x01\x02\x03"

    def test_rdma_write_outside_region_rejected(self, mm):
        region = mm.register(mm.alloc(64))
        with pytest.raises(RemoteAccessError):
            mm.rdma_write(region.addr + 62, region.rkey, b"\x01\x02\x03")

    def test_rdma_write_with_wrong_rkey_rejected(self, mm):
        r1 = mm.register(mm.alloc(64))
        r2 = mm.register(mm.alloc(64))
        # address from r1, key from r2 -> must fail containment
        with pytest.raises(RemoteAccessError):
            mm.rdma_write(r1.addr, r2.rkey, b"x")

    def test_rdma_read(self, mm):
        region = mm.register(mm.alloc(64))
        mm.write_local(region.addr + 10, b"abcdef")
        assert mm.rdma_read(region.addr + 10, region.rkey, 6) == b"abcdef"


class TestAtomics:
    def test_fetch_add_returns_old_and_increments(self, mm):
        region = mm.register(mm.alloc(64))
        assert mm.atomic(region.addr, region.rkey, "fetch_add", 0, 5) == 0
        assert mm.atomic(region.addr, region.rkey, "fetch_add", 0, 3) == 5
        raw = mm.read_local(region.addr, 8)
        assert int.from_bytes(raw, "little") == 8

    def test_cmp_swap_success_and_failure(self, mm):
        region = mm.register(mm.alloc(64))
        # swap when compare matches (initial value 0)
        assert mm.atomic(region.addr, region.rkey, "cmp_swap", 0, 42) == 0
        # compare mismatches -> value unchanged, old returned
        assert mm.atomic(region.addr, region.rkey, "cmp_swap", 7, 99) == 42
        raw = mm.read_local(region.addr, 8)
        assert int.from_bytes(raw, "little") == 42

    def test_negative_fetch_add_wraps_two_complement(self, mm):
        region = mm.register(mm.alloc(64))
        mm.atomic(region.addr, region.rkey, "fetch_add", 0, 10)
        old = mm.atomic(region.addr, region.rkey, "fetch_add", 0, -4)
        assert old == 10
        raw = mm.read_local(region.addr, 8)
        assert int.from_bytes(raw, "little", signed=True) == 6

    def test_atomic_requires_8_bytes_in_region(self, mm):
        region = mm.register(mm.alloc(8))
        with pytest.raises(RemoteAccessError):
            mm.atomic(region.addr + 4, region.rkey, "fetch_add", 0, 1)

    def test_unknown_op_rejected(self, mm):
        region = mm.register(mm.alloc(16))
        with pytest.raises(ValueError):
            mm.atomic(region.addr, region.rkey, "nonsense", 0, 1)

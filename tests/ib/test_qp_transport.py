"""Integration tests: UD datagrams and RC RDMA over the simulated fabric."""

import pytest

from repro.errors import QPStateError, RemoteAccessError, VerbsError
from repro.ib import Opcode, QPState
from repro.sim import spawn

from ..conftest import build_rig


def _mk_ud(rig, rank):
    """Create an activated UD QP for ``rank`` (runs inside a process)."""
    ctx = rig.ctxs[rank]
    scq, rcq = ctx.create_cq("s"), ctx.create_cq("r")
    holder = {}

    def proc(sim):
        holder["qp"] = yield from ctx.create_ud_qp(scq, rcq)

    spawn(rig.sim, proc(rig.sim))
    rig.sim.run()
    return holder["qp"], scq, rcq


class TestUD:
    def test_ud_datagram_delivery(self, rig2):
        qp0, s0, r0 = _mk_ud(rig2, 0)
        qp1, s1, r1 = _mk_ud(rig2, 1)
        got = []

        def sender(sim):
            yield from rig2.ctxs[0].ud_send(qp0, qp1.address, b"ping", 4)

        def receiver(sim):
            wc = yield r1.wait()
            got.append((wc.data, wc.src_addr, sim.now))

        spawn(rig2.sim, sender(rig2.sim))
        spawn(rig2.sim, receiver(rig2.sim))
        rig2.sim.run()
        (data, src, t) = got[0]
        assert data == b"ping"
        assert src == qp0.address
        assert t > 0

    def test_ud_mtu_enforced(self, rig2):
        qp0, s0, r0 = _mk_ud(rig2, 0)
        qp1, *_ = _mk_ud(rig2, 1)
        with pytest.raises(VerbsError):
            qp0.post_send(qp1.address, b"x" * 5000, 5000)

    def test_ud_send_completes_locally_without_ack(self, rig2):
        qp0, s0, r0 = _mk_ud(rig2, 0)
        qp1, *_ = _mk_ud(rig2, 1)
        qp0.post_send(qp1.address, b"a", 1, wr_id=77)
        rig2.sim.run()
        wc = s0.poll()
        assert wc is not None and wc.wr_id == 77

    def test_ud_loss_drops_packets(self):
        from repro.cluster import CostModel

        rig = build_rig(
            npes=2, cost=CostModel().evolve(ud_loss_prob=1.0, ud_duplicate_prob=0.0)
        )
        qp0, *_ = _mk_ud(rig, 0)
        qp1, s1, r1 = _mk_ud(rig, 1)
        qp0.post_send(qp1.address, b"gone", 4)
        rig.sim.run()
        assert len(r1) == 0
        assert rig.counters["fabric.ud_dropped"] == 1

    def test_ud_duplicate_delivers_twice(self):
        from repro.cluster import CostModel

        rig = build_rig(
            npes=2, cost=CostModel().evolve(ud_loss_prob=0.0, ud_duplicate_prob=1.0)
        )
        qp0, *_ = _mk_ud(rig, 0)
        qp1, s1, r1 = _mk_ud(rig, 1)
        qp0.post_send(qp1.address, b"dup", 3)
        rig.sim.run()
        assert len(r1) == 2


def _connect_pair(rig, a=0, b=1):
    """Establish a connected RC QP pair between ranks a and b."""
    out = {}

    def proc(sim):
        ctxa, ctxb = rig.ctxs[a], rig.ctxs[b]
        sa, ra = ctxa.create_cq("s"), ctxa.create_cq("r")
        sb, rb = ctxb.create_cq("s"), ctxb.create_cq("r")
        qa = yield from ctxa.create_rc_qp(sa, ra)
        qb = yield from ctxb.create_rc_qp(sb, rb)
        yield from ctxa.connect_rc_qp(qa, qb.address)
        yield from ctxb.connect_rc_qp(qb, qa.address)
        out.update(qa=qa, qb=qb, sa=sa, ra=ra, sb=sb, rb=rb)

    spawn(rig.sim, proc(rig.sim))
    rig.sim.run()
    return out


class TestRCStateMachine:
    def test_states_progress(self, rig2):
        pair = _connect_pair(rig2)
        assert pair["qa"].state is QPState.RTS
        assert pair["qb"].state is QPState.RTS

    def test_post_before_rts_rejected(self, rig2):
        ctx = rig2.ctxs[0]
        s, r = ctx.create_cq(), ctx.create_cq()

        def proc(sim):
            qp = yield from ctx.create_rc_qp(s, r)
            with pytest.raises(QPStateError):
                qp.post_send(b"x", 1)

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()

    def test_transition_order_enforced(self, rig2):
        ctx = rig2.ctxs[0]
        s, r = ctx.create_cq(), ctx.create_cq()

        def proc(sim):
            qp = yield from ctx.create_rc_qp(s, r)
            with pytest.raises(QPStateError):
                qp.modify_to_rts()  # skipping INIT/RTR

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()


class TestRCMessaging:
    def test_send_recv_roundtrip(self, rig2):
        pair = _connect_pair(rig2)
        got = []

        def sender(sim):
            yield from rig2.ctxs[0].post_send(pair["qa"], b"hello", 5, wr_id=1)
            wc = yield from rig2.ctxs[0].poll(pair["sa"])
            got.append(("send-done", wc.wr_id))

        def receiver(sim):
            wc = yield from rig2.ctxs[1].poll(pair["rb"])
            got.append(("recv", wc.data))

        spawn(rig2.sim, sender(rig2.sim))
        spawn(rig2.sim, receiver(rig2.sim))
        rig2.sim.run()
        assert ("recv", b"hello") in got
        assert ("send-done", 1) in got

    def test_rdma_write_moves_bytes(self, rig2):
        pair = _connect_pair(rig2)
        ctx1 = rig2.ctxs[1]
        done = []

        def proc(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            yield from rig2.ctxs[0].post_rdma_write(
                pair["qa"], b"DATA", region.addr + 16, region.rkey
            )
            wc = yield from rig2.ctxs[0].poll(pair["sa"])
            assert wc.opcode is Opcode.RDMA_WRITE
            done.append(ctx1.mm.read_local(region.addr + 16, 4))

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()
        assert done == [b"DATA"]

    def test_rdma_read_fetches_remote_bytes(self, rig2):
        pair = _connect_pair(rig2)
        ctx1 = rig2.ctxs[1]
        done = []

        def proc(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            ctx1.mm.write_local(region.addr, b"remote-bytes")
            yield from rig2.ctxs[0].post_rdma_read(
                pair["qa"], 12, region.addr, region.rkey
            )
            wc = yield from rig2.ctxs[0].poll(pair["sa"])
            done.append(wc.data)

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()
        assert done == [b"remote-bytes"]

    def test_rdma_write_bad_rkey_errors_at_requester(self, rig2):
        # IBV semantics: the target NAKs the unknown rkey and the
        # requester's WR completes with a remote-access error — the
        # target-side simulation must not crash.
        pair = _connect_pair(rig2)
        failures = []

        def proc(sim):
            yield from rig2.ctxs[0].post_rdma_write(
                pair["qa"], b"x", 0x999, rkey=0xBEEF
            )
            try:
                yield from rig2.ctxs[0].poll(pair["sa"])
            except RemoteAccessError as exc:
                failures.append(str(exc))

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()
        assert len(failures) == 1
        assert "0xbeef" in failures[0]

    def test_atomic_fetch_add_serializes_correctly(self, rig2):
        pair = _connect_pair(rig2)
        ctx1 = rig2.ctxs[1]
        results = []

        def proc(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            for i in range(4):
                yield from rig2.ctxs[0].post_atomic(
                    pair["qa"], "fetch_add", region.addr, region.rkey,
                    swap_or_add=10,
                )
                wc = yield from rig2.ctxs[0].poll(pair["sa"])
                results.append(wc.data)

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()
        assert results == [0, 10, 20, 30]

    def test_intra_node_faster_than_inter_node(self):
        rig = build_rig(npes=4, ppn=2)  # ranks 0,1 on node0; 2,3 on node1
        intra = _connect_pair(rig, 0, 1)
        t0 = rig.sim.now

        def time_put(pair, ctx):
            marks = {}

            def proc(sim):
                start = sim.now
                yield from ctx.post_rdma_write(pair["qa"], b"z" * 1024, region.addr, region.rkey)
                yield from ctx.poll(pair["sa"])
                marks["dt"] = sim.now - start

            return proc, marks

        # intra-node timing
        ctx1 = rig.ctxs[1]
        holder = {}

        def setup1(sim):
            addr = ctx1.mm.alloc(2048)
            holder["r"] = yield from ctx1.reg_mr(addr)

        spawn(rig.sim, setup1(rig.sim))
        rig.sim.run()
        region = holder["r"]
        proc, intra_marks = time_put(intra, rig.ctxs[0])
        spawn(rig.sim, proc(rig.sim))
        rig.sim.run()

        inter = _connect_pair(rig, 0, 2)
        ctx2 = rig.ctxs[2]
        holder2 = {}

        def setup2(sim):
            addr = ctx2.mm.alloc(2048)
            holder2["r"] = yield from ctx2.reg_mr(addr)

        spawn(rig.sim, setup2(rig.sim))
        rig.sim.run()
        region = holder2["r"]
        proc2, inter_marks = time_put(inter, rig.ctxs[0])
        spawn(rig.sim, proc2(rig.sim))
        rig.sim.run()

        assert intra_marks["dt"] < inter_marks["dt"]


class TestQPCache:
    def test_cache_misses_counted_when_working_set_exceeds_capacity(self):
        from repro.cluster import CostModel

        cost = CostModel().evolve(
            qp_cache_entries=2, ud_loss_prob=0.0, ud_duplicate_prob=0.0
        )
        rig = build_rig(npes=8, ppn=1, cost=cost)
        pairs = [_connect_pair(rig, 0, b) for b in range(1, 8)]
        rig.counters.reset()

        def proc(sim):
            for _ in range(3):
                for pair in pairs:
                    yield from rig.ctxs[0].post_send(pair["qa"], b"x", 1)
                    yield from rig.ctxs[0].poll(pair["sa"])

        spawn(rig.sim, proc(rig.sim))
        rig.sim.run()
        # 7 QPs cycled through a 2-entry cache: every round re-misses on
        # the initiator HCA (no steady state), i.e. >= 7 misses/round.
        assert rig.counters["hca.qp_cache_misses"] >= 3 * 7

    def test_small_working_set_hits_after_warmup(self, rig2):
        pair = _connect_pair(rig2)
        rig2.counters.reset()

        def proc(sim):
            for _ in range(5):
                yield from rig2.ctxs[0].post_send(pair["qa"], b"x", 1)
                yield from rig2.ctxs[0].poll(pair["sa"])

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()
        assert rig2.counters["hca.qp_cache_hits"] > rig2.counters["hca.qp_cache_misses"]


class TestBulkAccounting:
    def test_bulk_charge_matches_individual_costs(self):
        riga = build_rig(npes=2, ppn=1)
        rigb = build_rig(npes=2, ppn=1)
        cost = riga.cluster.cost

        def bulk(sim):
            yield from riga.ctxs[0].bulk_charge_rc_qps(10, connect=True)

        def individual(sim):
            ctx = rigb.ctxs[0]
            for _ in range(10):
                s, r = ctx.create_cq(), ctx.create_cq()
                qp = yield from ctx.create_rc_qp(s, r)
                # time-equivalent transitions (remote irrelevant for timing)
                yield sim.timeout(
                    cost.qp_modify_init_us + cost.qp_modify_rtr_us + cost.qp_modify_rts_us
                )

        spawn(riga.sim, bulk(riga.sim))
        spawn(rigb.sim, individual(rigb.sim))
        ta = riga.sim.run()
        tb = rigb.sim.run()
        assert ta == pytest.approx(tb)
        assert riga.ctxs[0].rc_qps_created == 10
        assert riga.ctxs[0].connections_established == 10

    def test_prepaid_materialization_charges_nothing(self, rig2):
        ctx0, ctx1 = rig2.ctxs

        def proc(sim):
            yield from ctx0.bulk_charge_rc_qps(5, connect=True)
            t0 = sim.now
            s, r = ctx0.create_cq(), ctx0.create_cq()
            s1, r1 = ctx1.create_cq(), ctx1.create_cq()
            qb = yield from ctx1.create_rc_qp(s1, r1)
            t_mid = sim.now
            qa = yield from ctx0.create_rc_qp(s, r, prepaid=True)
            yield from ctx0.connect_rc_qp(qa, qb.address, prepaid=True)
            assert sim.now == t_mid  # prepaid path consumed no simulated time
            assert qa.state is QPState.RTS

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()
        assert ctx0.rc_qps_created == 5  # bulk only; prepaid not double counted

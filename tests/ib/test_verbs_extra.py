"""Additional verbs-facade coverage: teardown, dereg, bulk destroy."""

import pytest

from repro.errors import MemoryRegistrationError, QPStateError
from repro.ib import QPState
from repro.sim import spawn

from ..conftest import build_rig


class TestTeardown:
    def test_destroy_qp_charges_time_and_unregisters(self, rig2):
        ctx = rig2.ctxs[0]
        marks = {}

        def proc(sim):
            s, r = ctx.create_cq(), ctx.create_cq()
            qp = yield from ctx.create_rc_qp(s, r)
            qpn = qp.qpn
            t0 = sim.now
            yield from ctx.destroy_qp(qp)
            marks["dt"] = sim.now - t0
            marks["gone"] = qpn not in ctx.hca._qps
            marks["state"] = qp.state

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()
        assert marks["dt"] == pytest.approx(rig2.cluster.cost.qp_destroy_us)
        assert marks["gone"]
        assert marks["state"] is QPState.ERROR

    def test_bulk_destroy_charge(self, rig2):
        ctx = rig2.ctxs[0]
        marks = {}

        def proc(sim):
            t0 = sim.now
            yield from ctx.bulk_charge_qp_destroy(100)
            marks["dt"] = sim.now - t0

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()
        assert marks["dt"] == pytest.approx(
            100 * rig2.cluster.cost.qp_destroy_us
        )

    def test_send_to_destroyed_qp_is_naked(self, rig2):
        """An RC *request* aimed at a destroyed QP is NAKed back to the
        requester (surfacing as an error completion), as real HCAs do —
        never silently swallowed, which would hang the sender."""
        ctx0, ctx1 = rig2.ctxs
        out = {}

        def proc(sim):
            s0, r0 = ctx0.create_cq(), ctx0.create_cq()
            s1, r1 = ctx1.create_cq(), ctx1.create_cq()
            qa = yield from ctx0.create_rc_qp(s0, r0)
            qb = yield from ctx1.create_rc_qp(s1, r1)
            yield from ctx0.connect_rc_qp(qa, qb.address)
            yield from ctx1.connect_rc_qp(qb, qa.address)
            qb.destroy()
            qa.post_send(b"into the void", 13)
            out["ok"] = True

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()
        assert out["ok"]
        assert rig2.counters["hca.nak_dead_qp"] >= 1
        assert rig2.counters["hca.dropped_no_qp"] == 0


class TestMemoryLifecycle:
    def test_dereg_makes_region_unreachable(self, rig2):
        ctx = rig2.ctxs[0]
        out = {}

        def proc(sim):
            addr = ctx.mm.alloc(128)
            region = yield from ctx.reg_mr(addr)
            assert ctx.registered_bytes == 128
            yield from ctx.dereg_mr(region)
            out["bytes"] = ctx.registered_bytes
            with pytest.raises(Exception):
                ctx.hca.memory_target(region.rkey)

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()
        assert out["bytes"] == 0

    def test_model_bytes_drives_cost_not_buffer(self, rig2):
        ctx = rig2.ctxs[0]
        cost = rig2.cluster.cost
        marks = {}

        def proc(sim):
            addr = ctx.mm.alloc(4096)
            t0 = sim.now
            yield from ctx.reg_mr(addr, model_bytes=256 * 1024 * 1024)
            marks["dt"] = sim.now - t0

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()
        assert marks["dt"] == pytest.approx(cost.mr_register_us(256 * 1024 * 1024))
        assert ctx.registered_bytes == 256 * 1024 * 1024


class TestBulkValidation:
    def test_negative_bulk_rejected(self, rig2):
        ctx = rig2.ctxs[0]

        def proc(sim):
            with pytest.raises(ValueError):
                yield from ctx.bulk_charge_rc_qps(-1)

        spawn(rig2.sim, proc(rig2.sim))
        rig2.sim.run()

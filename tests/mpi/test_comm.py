"""MPI layer tests (unified runtime over the same conduit)."""

import numpy as np
import pytest

from repro.errors import MPIError

from ..shmem.conftest import run_shmem


def run_mpi(fn, npes=4, **kw):
    return run_shmem(fn, npes=npes, uses_mpi=True, **kw)


class TestPointToPoint:
    def test_send_recv_ring(self):
        def prog(pe):
            mpi = pe.mpi
            right = (mpi.rank + 1) % mpi.size
            left = (mpi.rank - 1) % mpi.size
            got = yield from mpi.sendrecv(
                right, f"msg-{mpi.rank}", source=left
            )
            return got

        result = run_mpi(prog, npes=5)
        for rank, got in enumerate(result.app_results):
            assert got == f"msg-{(rank - 1) % 5}"

    def test_tag_matching(self):
        def prog(pe):
            mpi = pe.mpi
            if mpi.rank == 0:
                yield from mpi.send(1, "tag-9", tag=9)
                yield from mpi.send(1, "tag-3", tag=3)
                return None
            if mpi.rank == 1:
                # Receive in the opposite order of sending.
                a = yield from mpi.recv(0, tag=3)
                b = yield from mpi.recv(0, tag=9)
                return a, b
            yield from mpi.barrier()
            return None

        result = run_mpi(prog, npes=2)
        assert result.app_results[1] == ("tag-3", "tag-9")

    def test_messages_from_same_src_tag_keep_order(self):
        def prog(pe):
            mpi = pe.mpi
            if mpi.rank == 0:
                for i in range(5):
                    yield from mpi.send(1, i, tag=1)
                return None
            got = []
            for _ in range(5):
                got.append((yield from mpi.recv(0, tag=1)))
            return got

        result = run_mpi(prog, npes=2)
        assert result.app_results[1] == [0, 1, 2, 3, 4]

    def test_numpy_payload_sizes_used(self):
        def prog(pe):
            mpi = pe.mpi
            if mpi.rank == 0:
                yield from mpi.send(1, np.zeros(1024))
                return None
            arr = yield from mpi.recv(0)
            return arr.nbytes

        result = run_mpi(prog, npes=2)
        assert result.app_results[1] == 8192

    def test_invalid_rank_rejected(self):
        def prog(pe):
            with pytest.raises(MPIError):
                yield from pe.mpi.send(42, "x")
            yield from pe.mpi.barrier()
            return True

        result = run_mpi(prog, npes=2)
        assert all(result.app_results)


class TestCollectives:
    def test_bcast(self):
        def prog(pe):
            value = ("payload", 123) if pe.mpi.rank == 1 else None
            got = yield from pe.mpi.bcast(value, root=1)
            return got

        result = run_mpi(prog, npes=6)
        assert all(v == ("payload", 123) for v in result.app_results)

    def test_allreduce_sum(self):
        def prog(pe):
            total = yield from pe.mpi.allreduce(
                pe.mpi.rank + 1, lambda a, b: a + b
            )
            return total

        result = run_mpi(prog, npes=7)
        assert all(v == 28 for v in result.app_results)

    def test_reduce_only_at_root(self):
        def prog(pe):
            v = yield from pe.mpi.reduce(pe.mpi.rank, max, root=2)
            return v

        result = run_mpi(prog, npes=5)
        assert result.app_results[2] == 4
        assert all(
            v is None for r, v in enumerate(result.app_results) if r != 2
        )

    @pytest.mark.parametrize("npes", [2, 3, 8])
    def test_allgather(self, npes):
        def prog(pe):
            values = yield from pe.mpi.allgather(pe.mpi.rank * 2)
            return values

        result = run_mpi(prog, npes=npes)
        expected = [r * 2 for r in range(npes)]
        assert all(v == expected for v in result.app_results)

    def test_gather_at_root(self):
        def prog(pe):
            values = yield from pe.mpi.gather(chr(65 + pe.mpi.rank), root=0)
            return values

        result = run_mpi(prog, npes=4)
        assert result.app_results[0] == ["A", "B", "C", "D"]
        assert result.app_results[1] is None

    def test_alltoall(self):
        def prog(pe):
            outgoing = [f"{pe.mpi.rank}->{d}" for d in range(pe.mpi.size)]
            incoming = yield from pe.mpi.alltoall(outgoing)
            return incoming

        npes = 4
        result = run_mpi(prog, npes=npes)
        for rank, incoming in enumerate(result.app_results):
            assert incoming == [f"{s}->{rank}" for s in range(npes)]

    def test_alltoall_length_validated(self):
        def prog(pe):
            with pytest.raises(MPIError):
                yield from pe.mpi.alltoall([1, 2])  # wrong length for 4 PEs
            yield from pe.mpi.barrier()
            return True

        result = run_mpi(prog, npes=4)
        assert all(result.app_results)


class TestUnifiedRuntime:
    def test_mpi_and_shmem_share_connections(self):
        """A connection made by MPI traffic is reused by OpenSHMEM."""

        def prog(pe):
            mpi = pe.mpi
            partner = (pe.mype + pe.npes // 2) % pe.npes
            addr = pe.shmalloc(8)
            yield from mpi.barrier()
            # MPI p2p first: creates the connection in on-demand mode.
            if pe.mype < partner:
                yield from mpi.send(partner, "warm")
            else:
                yield from mpi.recv(partner)
            before = pe.ctx.connections_established
            # OpenSHMEM put to the same partner must not reconnect.
            yield from pe.put(partner, addr, b"x" * 8)
            after = pe.ctx.connections_established
            yield from mpi.barrier()
            return before == after

        result = run_mpi(prog, npes=4)
        assert all(result.app_results)

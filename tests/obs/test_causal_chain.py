"""Acceptance: one cross-rank connection reads as one causal span tree.

The issue's bar: a 128-PE on-demand run with ``observe=True`` must
export a Chrome trace in which a connection establishment reconstructs
as a single causal chain — conduit request, UD exchange, QP
RESET→INIT→RTR→RTS on both ends, first RC delivery — by following
``parent_id`` links from the client's ``conduit.connect`` root span.
"""

import pytest

from repro.apps import HelloWorld
from repro.cluster import cluster_b
from repro.core import Job, RuntimeConfig
from repro.obs import span_descendants, span_index, validate_chrome_trace


@pytest.fixture(scope="module")
def job():
    job = Job(
        npes=128,
        config=RuntimeConfig.proposed(),
        cluster=cluster_b(128, ppn=16),
        observe=True,
    )
    job.run(HelloWorld())
    return job


def _cross_node_connected_roots(job):
    """Client connect spans that completed via the reply path against a
    peer on a different node (the full UD handshake, not a local serve
    shortcut or a collision adoption)."""
    cluster = job.cluster
    roots = []
    for span in job.obs.spans.by_name("conduit.connect"):
        if span.attrs.get("outcome") != "connected":
            continue
        client = int(span.actor[2:])
        peer = span.attrs["peer"]
        if cluster.node_of(client) != cluster.node_of(peer):
            roots.append(span)
    return roots


def test_cross_rank_establishment_is_one_causal_tree(job):
    roots = _cross_node_connected_roots(job)
    assert roots, "128-PE on-demand run produced no cross-node handshake"
    children = span_index(job.obs.spans)

    root = roots[0]
    client = root.actor
    server = f"pe{root.attrs['peer']}"
    tree = span_descendants(root, children)
    by_name_actor = {(s.name, s.actor) for s in tree}

    # Client side: QP brought up, request sent, reply received, RTR/RTS.
    for name in ("qp.RESET", "qp.INIT", "conduit.ud_request",
                 "conduit.reply_rx", "qp.RTR", "qp.RTS"):
        assert (name, client) in by_name_actor, (
            f"missing {name} on client {client} in tree of span "
            f"#{root.span_id}"
        )
    # Server side: the serve span links back via the request's span_id
    # and carries the server QP state machine and the UD reply.
    for name in ("conduit.serve", "qp.RESET", "qp.INIT", "qp.RTR",
                 "qp.RTS", "conduit.ud_reply"):
        assert (name, server) in by_name_actor, (
            f"missing {name} on server {server} in tree of span "
            f"#{root.span_id}"
        )
    # The first RC delivery over the new connection is attributed to
    # the same establishment tree.
    assert any(s.name == "rc.first_delivery" for s in tree)


def test_causal_ordering_within_the_tree(job):
    children = span_index(job.obs.spans)
    for root in _cross_node_connected_roots(job):
        tree = span_descendants(root, children)
        named = {}
        for s in tree:
            named.setdefault(s.name, s)
        request = named["conduit.ud_request"]
        serve = named["conduit.serve"]
        reply = named["conduit.ud_reply"]
        reply_rx = named["conduit.reply_rx"]
        assert root.start_us <= request.start_us
        assert request.start_us <= serve.start_us
        assert serve.start_us <= reply.start_us
        assert reply.start_us <= reply_rx.start_us
        assert reply_rx.start_us <= root.end_us
        # Every span in the tree lives inside the simulated run.
        for s in tree:
            assert s.start_us >= 0.0
            assert s.end_us is None or s.end_us >= s.start_us


def test_handshake_rtt_distribution_recorded(job):
    hist = job.obs.metrics.histogram("conduit.handshake_rtt_us")
    assert hist.count >= len(_cross_node_connected_roots(job))
    assert hist.min > 0.0
    assert hist.quantile(0.99) >= hist.quantile(0.5) > 0.0


def test_chrome_trace_exports_and_validates_at_scale(job):
    trace = job.obs.chrome_trace(label="128-PE on-demand")
    stats = validate_chrome_trace(trace)
    # One metadata pair per track plus the process name: 128 PE tracks
    # and at least the pmi track (fabric only appears when the fabric
    # records drop/duplicate events, which a clean run has none of).
    ntracks = (stats["M"] - 1) // 2
    assert ntracks >= 129
    assert stats["X"] > 0 and stats["i"] > 0
    assert stats.get("s", 0) == stats.get("f", 0) > 0
    names = {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {"pe0", "pe127", "pmi"} <= names

"""Observed runs are deterministic: same seed + fault plan, same bytes.

The flight recorder inherits the repo's determinism contract — two
identical runs must produce byte-identical span dumps and metric
snapshots, *including* under fault injection (the injector draws from
named RNG substreams, so the fault schedule is part of the seed).
"""

import json

from repro.apps import HelloWorld
from repro.cluster import cluster_a
from repro.core import Job, RuntimeConfig
from repro.faults import FaultPlan, PMIFault, QPCreateFault, UDFault

PLAN = FaultPlan(
    name="obs-determinism",
    ud=(
        UDFault("drop", prob=0.05),
        UDFault("duplicate", prob=0.02, delay_us=40.0, jitter_us=10.0),
    ),
    qp_create=(QPCreateFault(first_n=1, per_rank=True),),
    pmi=(PMIFault(window=(0.0, 1e6), slowdown=2.0),),
)


def _run(seed=13):
    job = Job(
        npes=16,
        config=RuntimeConfig.proposed().evolve(seed=seed),
        cluster=cluster_a(16, ppn=4),
        faults=PLAN,
        observe=True,
    )
    result = job.run(HelloWorld())
    return job, result


def test_same_seed_same_plan_byte_identical_exports():
    job_a, res_a = _run()
    job_b, res_b = _run()
    assert job_a.obs.flat_spans() == job_b.obs.flat_spans()
    assert json.dumps(res_a.telemetry, sort_keys=True) == json.dumps(
        res_b.telemetry, sort_keys=True
    )
    assert json.dumps(job_a.obs.chrome_trace(), sort_keys=True) == (
        json.dumps(job_b.obs.chrome_trace(), sort_keys=True)
    )


def test_different_seed_diverges():
    job_a, _ = _run(seed=13)
    job_b, _ = _run(seed=14)
    assert job_a.obs.flat_spans() != job_b.obs.flat_spans()


def test_fault_hits_land_on_the_faults_track():
    job, result = _run()
    spans = job.obs.spans
    fault_events = [s for s in spans if s.actor == "faults"]
    assert fault_events, "plan with prob=1 QP rule produced no fault spans"
    names = {s.name for s in fault_events}
    assert "fault.qp_enomem" in names
    assert "fault.pmi_slowdown" in names
    # Fault counters and their span events agree.
    counters = result.telemetry["metrics"]["counters"]
    assert counters["faults.qp_create_failed"] == len(
        spans.by_name("fault.qp_enomem")
    )
    by_name = {}
    for s in fault_events:
        by_name[s.name] = by_name.get(s.name, 0) + 1
    if "fault.ud_drop" in names:
        assert counters["faults.ud_dropped"] == by_name["fault.ud_drop"]

"""Diff tool + export round-trips: every exporter's output must load
back through ``load_snapshot`` and self-diff to zero deltas."""

import json

import pytest

from repro.apps import HelloWorld
from repro.cluster import cluster_a
from repro.core import Job, RuntimeConfig
from repro.obs import (
    diff_snapshots,
    format_diff,
    load_snapshot,
    prometheus_text,
    series_final,
    series_peak,
    timeline_csv,
)
from repro.obs.__main__ import main as obs_main


@pytest.fixture(scope="module")
def telemetry():
    job = Job(npes=8, config=RuntimeConfig.proposed(),
              cluster=cluster_a(8, ppn=2),
              observe={"timeline": {"interval_us": 2000.0}})
    return job.run(HelloWorld()).telemetry


def _assert_zero_self_diff(report):
    for entry in report["series"].values():
        assert entry["only_in"] is None
        assert entry["peak_delta"] == 0.0 and entry["final_delta"] == 0.0
    for entry in report["counters"].values():
        assert entry["only_in"] is None and entry["delta"] == 0
    for entry in report["histograms"].values():
        assert entry["only_in"] is None
        for field in ("count", "mean", "p50", "p99"):
            assert entry[f"{field}_delta"] == 0


class TestRoundTrips:
    def test_telemetry_json(self, telemetry, tmp_path):
        path = tmp_path / "tele.json"
        path.write_text(json.dumps(telemetry))
        snap = load_snapshot(str(path))
        assert snap["series"] and snap["counters"] and snap["histograms"]
        _assert_zero_self_diff(diff_snapshots(snap, snap))
        # Raw telemetry dicts diff directly too (normalised inside).
        _assert_zero_self_diff(diff_snapshots(telemetry, telemetry))

    def test_timeline_csv(self, telemetry, tmp_path):
        path = tmp_path / "tl.csv"
        path.write_text(timeline_csv(telemetry["timeline"]))
        snap = load_snapshot(str(path))
        original = telemetry["timeline"]["series"]
        assert sorted(snap["series"]) == sorted(original)
        for key, buf in original.items():
            assert series_peak(snap["series"][key]) == series_peak(buf)
            assert series_final(snap["series"][key]) == series_final(buf)
        _assert_zero_self_diff(diff_snapshots(snap, snap))

    def test_prometheus_text(self, telemetry, tmp_path):
        path = tmp_path / "m.prom"
        path.write_text(prometheus_text(telemetry["metrics"]))
        snap = load_snapshot(str(path))
        assert snap["counters"] == {
            k: v for k, v in telemetry["metrics"]["counters"].items()
        }
        for key, hist in telemetry["metrics"]["histograms"].items():
            got = snap["histograms"][key]
            assert got["count"] == hist["count"]
            assert got["p50"] == hist["p50"]
            assert got["p99"] == hist["p99"]
        _assert_zero_self_diff(diff_snapshots(snap, snap))

    def test_cross_format_diff_is_zero_on_series(self, telemetry, tmp_path):
        """JSON and CSV views of the same run agree exactly."""
        j = tmp_path / "t.json"
        c = tmp_path / "t.csv"
        j.write_text(json.dumps(telemetry))
        c.write_text(timeline_csv(telemetry["timeline"]))
        report = diff_snapshots(load_snapshot(str(j)), load_snapshot(str(c)))
        for entry in report["series"].values():
            assert entry["only_in"] is None
            assert entry["peak_delta"] == 0.0


class TestDiffSemantics:
    def test_series_deltas_and_only_in(self):
        a = {"series": {
            "conn": {"kind": "gauge", "max": [3.0, 5.0], "last": [5.0, 2.0]},
            "gone": {"kind": "gauge", "max": [1.0], "last": [1.0]},
        }}
        b = {"series": {
            "conn": {"kind": "gauge", "max": [9.0], "last": [4.0]},
            "new": {"kind": "gauge", "max": [2.0], "last": [2.0]},
        }}
        report = diff_snapshots(a, b)
        conn = report["series"]["conn"]
        assert conn["peak_delta"] == 4.0 and conn["final_delta"] == 2.0
        assert report["series"]["gone"]["only_in"] == "a"
        assert report["series"]["new"]["only_in"] == "b"

    def test_counter_delta(self):
        report = diff_snapshots(
            {"metrics": {"counters": {"evictions": 10}}},
            {"metrics": {"counters": {"evictions": 3}}},
        )
        assert report["counters"]["evictions"]["delta"] == -7

    def test_format_diff_mentions_everything(self):
        report = diff_snapshots(
            {"series": {"x": {"max": [1.0], "last": [1.0]}},
             "metrics": {"counters": {"c": 1}}},
            {"series": {"x": {"max": [4.0], "last": [0.0]}},
             "metrics": {"counters": {"c": 5}}},
        )
        text = format_diff(report, label_a="base", label_b="new")
        assert "A=base" in text and "B=new" in text
        assert "x: peak 1 -> 4 (+3)" in text
        assert "c: 1 -> 5 (+4)" in text

    def test_format_diff_empty(self):
        text = format_diff(diff_snapshots({}, {}))
        assert "(no overlapping telemetry)" in text


class TestLoadSnapshotErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            load_snapshot(str(tmp_path / "nope.json"))

    @pytest.mark.parametrize("content,why", [
        ("", "empty"),
        ("{not json", "corrupt JSON"),
        ("[1, 2]", "must be an object"),
        ("what even is this", "unrecognised"),
    ])
    def test_bad_content(self, tmp_path, content, why):
        path = tmp_path / "bad.txt"
        path.write_text(content)
        with pytest.raises(ValueError, match=why):
            load_snapshot(str(path))


class TestCli:
    def test_diff_subcommand_self_diff(self, telemetry, tmp_path, capsys):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(telemetry))
        assert obs_main(["diff", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry diff" in out

    def test_diff_missing_file_one_line_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert obs_main(["diff", missing, missing]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_diff_corrupt_file_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{{{")
        assert obs_main(["diff", str(bad), str(bad)]) == 2
        err = capsys.readouterr().err
        assert "corrupt JSON" in err and "Traceback" not in err

    def test_run_output_path_validated_before_running(self, capsys):
        assert obs_main(["--npes", "4", "--out", "/no/such/dir/x.json"]) == 2
        err = capsys.readouterr().err
        assert "--out" in err and "does not exist" in err

    def test_csv_requires_timeline(self, capsys):
        assert obs_main(["--npes", "4", "--csv", "x.csv"]) == 2
        assert "--csv requires --timeline" in capsys.readouterr().err

    def test_diff_output_flag_validated(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        path.write_text("{}")
        assert obs_main(["diff", str(path), str(path),
                         "--output", "/no/such/dir/report.txt"]) == 2
        assert "--output" in capsys.readouterr().err

"""Unit tests for the exporters and the trace-event validator."""

import json

import pytest

from repro.obs import (
    Span,
    chrome_trace,
    flat_dump,
    span_descendants,
    span_index,
    validate_chrome_trace,
)


def _spans():
    """A small cross-actor tree: pe0 connect -> pe1 serve -> events."""
    connect = Span(1, None, "conduit.connect", "pe0", 10.0, 50.0,
                   {"peer": 1})
    serve = Span(2, 1, "conduit.serve", "pe1", 20.0, 40.0, {"peer": 0})
    transition = Span(3, 2, "qp.RTR", "pe1", 30.0, 30.0)
    still_open = Span(4, 1, "conduit.reply_rx", "pe0", 45.0, None)
    return [connect, serve, transition, still_open]


class TestChromeTrace:
    def test_metadata_tracks_and_labels(self):
        trace = chrome_trace(_spans(), label="unit test")
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0] == {
            "ph": "M", "pid": 1, "name": "process_name",
            "args": {"name": "unit test"},
        }
        names = {e["args"]["name"]: e["tid"] for e in meta
                 if e["name"] == "thread_name"}
        assert names == {"pe0": 1, "pe1": 2}

    def test_track_ordering_numeric_pes_then_special(self):
        spans = [
            Span(1, None, "x", "pe10", 0.0, 1.0),
            Span(2, None, "x", "fabric", 0.0, 1.0),
            Span(3, None, "x", "pe2", 0.0, 1.0),
            Span(4, None, "x", "pmi", 0.0, 1.0),
            Span(5, None, "x", "faults", 0.0, 1.0),
            Span(6, None, "x", "weird", 0.0, 1.0),
        ]
        trace = chrome_trace(spans)
        names = [e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("name") == "thread_name"]
        assert names == ["pe2", "pe10", "fabric", "pmi", "faults", "weird"]

    def test_closed_spans_are_X_events(self):
        trace = chrome_trace(_spans())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 2
        connect = next(e for e in xs if e["name"] == "conduit.connect")
        assert connect["ts"] == 10.0 and connect["dur"] == 40.0
        assert connect["args"]["span_id"] == 1
        assert connect["args"]["peer"] == 1
        assert "parent_id" not in connect["args"]
        serve = next(e for e in xs if e["name"] == "conduit.serve")
        assert serve["args"]["parent_id"] == 1

    def test_instants_and_open_spans_are_i_events(self):
        trace = chrome_trace(_spans())
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"qp.RTR", "conduit.reply_rx"}
        open_ev = next(e for e in instants if e["name"] == "conduit.reply_rx")
        assert open_ev["args"]["open"] is True
        assert all(e["s"] == "t" for e in instants)

    def test_cross_actor_parents_become_flow_pairs(self):
        trace = chrome_trace(_spans())
        flows_s = {e["id"]: e for e in trace["traceEvents"] if e["ph"] == "s"}
        flows_f = {e["id"]: e for e in trace["traceEvents"] if e["ph"] == "f"}
        # serve (pe1 <- pe0 parent), qp.RTR is same-actor as its parent
        # (no flow), reply_rx (pe0 <- pe0? no — parent is connect on
        # pe0, same actor, no flow).  Only span 2 crosses actors.
        assert set(flows_s) == set(flows_f) == {2}
        s, f = flows_s[2], flows_f[2]
        assert s["tid"] != f["tid"]  # parent track vs child track
        assert s["ts"] == 20.0 and f["ts"] == 20.0

    def test_flow_anchor_clamped_into_parent_interval(self):
        parent = Span(1, None, "p", "pe0", 10.0, 20.0)
        early = Span(2, 1, "c-early", "pe1", 5.0, 6.0)
        late = Span(3, 1, "c-late", "pe1", 90.0, 95.0)
        trace = chrome_trace([parent, early, late])
        anchors = {e["id"]: e["ts"] for e in trace["traceEvents"]
                   if e["ph"] == "s"}
        assert anchors == {2: 10.0, 3: 20.0}

    def test_other_data_reports_drop_count(self):
        trace = chrome_trace(_spans(), dropped=7)
        assert trace["otherData"] == {"spans": 4, "dropped_spans": 7}

    def test_is_json_serialisable_and_self_validating(self):
        trace = chrome_trace(_spans())
        stats = validate_chrome_trace(json.dumps(trace))
        assert stats["M"] == 5  # process_name + 2 per actor
        assert stats["X"] == 2 and stats["i"] == 2
        assert stats["s"] == stats["f"] == 1


class TestFlatDump:
    def test_exact_line_format(self):
        spans = [
            Span(1, None, "root", "pe0", 1.5, 4.0, {"b": 2, "a": "x"}),
            Span(2, 1, "leaf", "fabric", 4.0, None),
        ]
        assert flat_dump(spans) == [
            "1.5|4.0|pe0|root|1|-|a='x',b=2",
            "4.0|open|fabric|leaf|2|1|-",
        ]

    def test_deterministic_attr_ordering(self):
        a = Span(1, None, "n", "pe0", 0.0, 1.0, {"z": 1, "a": 2})
        b = Span(1, None, "n", "pe0", 0.0, 1.0, {"a": 2, "z": 1})
        assert flat_dump([a]) == flat_dump([b])


class TestTreeHelpers:
    def test_index_and_descendants_depth_first(self):
        root = Span(1, None, "r", "pe0", 0.0, 9.0)
        c1 = Span(2, 1, "c1", "pe0", 1.0, 2.0)
        c2 = Span(3, 1, "c2", "pe1", 3.0, 4.0)
        gc = Span(4, 2, "gc", "pe0", 1.5, 1.6)
        other = Span(5, None, "other", "pe2", 0.0, 1.0)
        children = span_index([root, c1, c2, gc, other])
        assert children[None] == [root, other]
        assert children[1] == [c1, c2]
        assert span_descendants(root, children) == [c1, gc, c2]
        assert span_descendants(other, children) == []


class TestValidator:
    def test_rejects_non_trace_objects(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_unknown_phase(self):
        trace = {"traceEvents": [
            {"ph": "Z", "pid": 1, "tid": 1, "ts": 0.0, "name": "x"},
        ]}
        with pytest.raises(ValueError, match="unknown or missing ph"):
            validate_chrome_trace(trace)

    def test_rejects_missing_tid_and_ts(self):
        with pytest.raises(ValueError, match="ts must be a number"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "i", "pid": 1, "tid": 1, "name": "x", "s": "t"},
            ]})
        with pytest.raises(ValueError, match="tid must be an int"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "i", "pid": 1, "ts": 0.0, "name": "x", "s": "t"},
            ]})

    def test_rejects_negative_ts_and_missing_dur(self):
        with pytest.raises(ValueError, match="ts must be >= 0"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "i", "pid": 1, "tid": 1, "ts": -1.0, "name": "x"},
            ]})
        with pytest.raises(ValueError, match="needs dur"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "name": "x"},
            ]})

    def test_rejects_bad_instant_scope_and_metadata(self):
        with pytest.raises(ValueError, match="instant scope"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "i", "pid": 1, "tid": 1, "ts": 0.0, "name": "x",
                 "s": "zebra"},
            ]})
        with pytest.raises(ValueError, match="unknown metadata name"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "M", "pid": 1, "name": "nonsense", "args": {}},
            ]})

    def test_rejects_unmatched_flows(self):
        trace = {"traceEvents": [
            {"ph": "s", "pid": 1, "tid": 1, "ts": 0.0, "name": "x", "id": 9},
        ]}
        with pytest.raises(ValueError, match="unmatched flow"):
            validate_chrome_trace(trace)

    def test_accepts_json_string_input(self):
        trace = json.dumps({"traceEvents": [
            {"ph": "M", "pid": 1, "name": "process_name",
             "args": {"name": "t"}},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 1.0,
             "name": "x"},
        ]})
        assert validate_chrome_trace(trace) == {"M": 1, "X": 1}

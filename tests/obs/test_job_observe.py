"""Job-level observability wiring: opt-in, passivity, telemetry shape."""

from repro.apps import HelloWorld
from repro.cluster import cluster_a
from repro.core import Job, RuntimeConfig
from repro.obs import CountersBridge, Observability
from repro.sim import Counters


def _job(observe=None, config=None, npes=8, ppn=2):
    return Job(
        npes=npes,
        config=config or RuntimeConfig.proposed(),
        cluster=cluster_a(npes, ppn=ppn),
        observe=observe,
    )


def test_observation_is_off_by_default():
    job = _job()
    assert job.obs is None
    assert type(job.counters) is Counters
    result = job.run(HelloWorld())
    assert result.telemetry is None


def test_observe_true_installs_the_recorder_everywhere():
    job = _job(observe=True)
    assert isinstance(job.obs, Observability)
    assert isinstance(job.counters, CountersBridge)
    assert job.fabric.obs is job.obs
    assert job.network.obs is job.obs
    assert job.pmi_domain.obs is job.obs
    assert all(h.obs is job.obs for h in job.hcas)
    assert all(c.obs is job.obs for c in job.pmi)
    assert all(p.obs is job.obs for p in job.pes)


def test_config_observe_flag_and_arg_override():
    cfg = RuntimeConfig.proposed().evolve(observe=True)
    assert _job(config=cfg).obs is not None
    # The explicit constructor argument wins over the config flag.
    assert _job(observe=False, config=cfg).obs is None


def test_telemetry_shape_and_expected_series():
    job = _job(observe=True)
    result = job.run(HelloWorld())
    tele = result.telemetry
    assert tele["spans"]["count"] > 0
    assert tele["spans"]["dropped"] == 0
    hists = tele["metrics"]["histograms"]
    # On-demand startup on a 4-node cluster must record handshake RTTs,
    # per-node QP-cache misses and the per-PE start_pes distribution.
    assert hists["conduit.handshake_rtt_us"]["count"] > 0
    assert hists["conduit.handshake_rtt_us"]["min"] > 0.0
    assert hists["shmem.start_pes_us"]["count"] == job.npes
    assert any(k.startswith("hca.qp_cache_miss_penalty_us") for k in hists)
    # The flat counters ride through the façade into the registry.
    assert tele["metrics"]["counters"]["conduit.connect_requests"] > 0
    assert result.counters["conduit.connect_requests"] == (
        tele["metrics"]["counters"]["conduit.connect_requests"]
    )


def test_expected_span_families_are_recorded():
    job = _job(observe=True)
    job.run(HelloWorld())
    spans = job.obs.spans
    assert len(spans.by_name("shmem.start_pes")) == job.npes
    assert spans.by_name("conduit.connect")
    assert spans.by_name("conduit.serve")
    assert spans.by_name("pmi.iallgather")
    assert spans.by_name("pmi.tree_send")
    assert spans.by_name("rc.first_delivery")
    # Every recorded span was closed by the end of the run except the
    # PMI collective spans whose completion callback may still be
    # pending — by job end even those are closed.
    assert all(not s.open for s in spans)


def test_fence_histogram_under_current_design():
    job = _job(observe=True, config=RuntimeConfig.current())
    result = job.run(HelloWorld())
    hists = result.telemetry["metrics"]["histograms"]
    assert hists["pmi.fence_us"]["count"] > 0


def test_observation_is_passive():
    # The recorder must not perturb the simulation: byte-identical
    # wall clock and counters with and without it.
    base = _job(observe=False).run(HelloWorld())
    seen = _job(observe=True).run(HelloWorld())
    assert seen.wall_time_us == base.wall_time_us
    assert seen.app_done_us == base.app_done_us
    assert seen.counters == base.counters
    assert seen.startup.phase_means == base.startup.phase_means

"""Job-level observability wiring: opt-in, passivity, telemetry shape."""

import pytest

from repro.apps import ChurnWorkload, HelloWorld
from repro.cluster import cluster_a
from repro.core import Job, RuntimeConfig
from repro.gasnet import LifecyclePolicy
from repro.obs import CountersBridge, Observability, series_peak
from repro.sim import Counters


def _job(observe=None, config=None, npes=8, ppn=2):
    return Job(
        npes=npes,
        config=config or RuntimeConfig.proposed(),
        cluster=cluster_a(npes, ppn=ppn),
        observe=observe,
    )


def test_observation_is_off_by_default():
    job = _job()
    assert job.obs is None
    assert type(job.counters) is Counters
    result = job.run(HelloWorld())
    assert result.telemetry is None


def test_observe_true_installs_the_recorder_everywhere():
    job = _job(observe=True)
    assert isinstance(job.obs, Observability)
    assert isinstance(job.counters, CountersBridge)
    assert job.fabric.obs is job.obs
    assert job.network.obs is job.obs
    assert job.pmi_domain.obs is job.obs
    assert all(h.obs is job.obs for h in job.hcas)
    assert all(c.obs is job.obs for c in job.pmi)
    assert all(p.obs is job.obs for p in job.pes)


def test_config_observe_flag_and_arg_override():
    cfg = RuntimeConfig.proposed().evolve(observe=True)
    assert _job(config=cfg).obs is not None
    # The explicit constructor argument wins over the config flag.
    assert _job(observe=False, config=cfg).obs is None


def test_telemetry_shape_and_expected_series():
    job = _job(observe=True)
    result = job.run(HelloWorld())
    tele = result.telemetry
    assert tele["spans"]["count"] > 0
    assert tele["spans"]["dropped"] == 0
    hists = tele["metrics"]["histograms"]
    # On-demand startup on a 4-node cluster must record handshake RTTs,
    # per-node QP-cache misses and the per-PE start_pes distribution.
    assert hists["conduit.handshake_rtt_us"]["count"] > 0
    assert hists["conduit.handshake_rtt_us"]["min"] > 0.0
    assert hists["shmem.start_pes_us"]["count"] == job.npes
    assert any(k.startswith("hca.qp_cache_miss_penalty_us") for k in hists)
    # The flat counters ride through the façade into the registry.
    assert tele["metrics"]["counters"]["conduit.connect_requests"] > 0
    assert result.counters["conduit.connect_requests"] == (
        tele["metrics"]["counters"]["conduit.connect_requests"]
    )


def test_expected_span_families_are_recorded():
    job = _job(observe=True)
    job.run(HelloWorld())
    spans = job.obs.spans
    assert len(spans.by_name("shmem.start_pes")) == job.npes
    assert spans.by_name("conduit.connect")
    assert spans.by_name("conduit.serve")
    assert spans.by_name("pmi.iallgather")
    assert spans.by_name("pmi.tree_send")
    assert spans.by_name("rc.first_delivery")
    # Every recorded span was closed by the end of the run except the
    # PMI collective spans whose completion callback may still be
    # pending — by job end even those are closed.
    assert all(not s.open for s in spans)


def test_fence_histogram_under_current_design():
    job = _job(observe=True, config=RuntimeConfig.current())
    result = job.run(HelloWorld())
    hists = result.telemetry["metrics"]["histograms"]
    assert hists["pmi.fence_us"]["count"] > 0


def test_observation_is_passive():
    # The recorder must not perturb the simulation: byte-identical
    # wall clock and counters with and without it.
    base = _job(observe=False).run(HelloWorld())
    seen = _job(observe=True).run(HelloWorld())
    assert seen.wall_time_us == base.wall_time_us
    assert seen.app_done_us == base.app_done_us
    assert seen.counters == base.counters
    assert seen.startup.phase_means == base.startup.phase_means


# ----------------------------------------------------------------------
# eviction/reconnect churn under observation (the CountersBridge's
# hardest case: the lifecycle reaper drives counters from timer context
# while the sampler reads them)
# ----------------------------------------------------------------------
def _churn_job(observe, npes=16):
    policy = LifecyclePolicy(policy="lru")
    return Job(
        npes=npes,
        config=RuntimeConfig.proposed(lifecycle=policy),
        cluster=cluster_a(npes, ppn=2),
        observe=observe,
    )


def _churn_app():
    return ChurnWorkload(epochs=3, partners=3, requests=4,
                         idle_gap_us=30_000.0)


class TestChurnObservationMatrix:
    """Observed and unobserved churn runs are the same simulation."""

    @pytest.fixture(scope="class")
    def runs(self):
        return {
            "off": _churn_job(observe=False).run(_churn_app()),
            "on": _churn_job(observe=True).run(_churn_app()),
            "timeline": _churn_job(
                observe={"timeline": True}).run(_churn_app()),
        }

    def test_the_workload_actually_churns(self, runs):
        base = runs["off"]
        assert base.counters["conduit.evictions"] > 0
        assert base.counters["conduit.reconnects"] > 0

    @pytest.mark.parametrize("mode", ["on", "timeline"])
    def test_flat_counters_identical_under_observation(self, runs, mode):
        # The CountersBridge façade must count exactly like the plain
        # Counters dict — including the eviction/reconnect/drain
        # counters the reaper drives from timer context.
        assert runs[mode].counters == runs["off"].counters

    @pytest.mark.parametrize("mode", ["on", "timeline"])
    def test_simulated_time_identical_under_observation(self, runs, mode):
        assert runs[mode].wall_time_us == runs["off"].wall_time_us
        assert runs[mode].app_done_us == runs["off"].app_done_us

    def test_eviction_counters_reach_the_registry(self, runs):
        metrics = runs["on"].telemetry["metrics"]
        flat = runs["off"].counters
        # Label-less series ride through the façade 1:1 ...
        assert metrics["counters"]["conduit.evictions"] == (
            flat["conduit.evictions"]
        )
        # ... and the policy-labelled breakdown is recorded alongside
        # (the reaper evicts with reason == policy name).
        assert metrics["counters"]["conduit.evictions{policy=lru}"] == (
            flat["conduit.evictions"]
        )
        assert "conduit.reconnect_latency_us" in metrics["histograms"]

    def test_timeline_peak_matches_scalar_peak(self, runs):
        result = runs["timeline"]
        scalar_peak = max(
            r["peak_connections"] for r in result.app_results
        )
        buf = result.telemetry["timeline"]["series"][
            "conduit.peak_connections"
        ]
        assert series_peak(buf) == scalar_peak
        # Cumulative probes end at the flat counter values.
        evict_buf = result.telemetry["timeline"]["series"][
            "conduit.evictions"
        ]
        assert evict_buf["kind"] == "counter"
        assert evict_buf["last"][-1] == result.counters["conduit.evictions"]

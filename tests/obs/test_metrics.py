"""Unit tests for the metrics registry: buckets, series, the façade.

The bucket-boundary tests are the load-bearing ones: ``bucket_index``
must be *exact* at powers of two (le semantics — ``2**k`` lands in the
bucket whose bound is ``2**k``), which is why the implementation uses
``math.frexp`` instead of ``log2`` rounding.
"""

import math

import pytest

from repro.obs import (
    BUCKET_BOUNDS,
    Counter,
    CountersBridge,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
)
from repro.obs.metrics import NUM_BUCKETS
from repro.sim import Counters


class TestBucketIndex:
    def test_every_power_of_two_lands_on_its_own_bound(self):
        # le semantics: v == bounds[i] must count in bucket i, for every
        # finite bound.  This is the exactness frexp buys.
        for i, bound in enumerate(BUCKET_BOUNDS):
            assert bucket_index(bound) == i, (
                f"2**{int(math.log2(bound))} should land in its own "
                f"bucket {i}, got {bucket_index(bound)}"
            )

    def test_just_above_a_bound_spills_to_the_next_bucket(self):
        for i, bound in enumerate(BUCKET_BOUNDS[:-1]):
            above = math.nextafter(bound, math.inf)
            assert bucket_index(above) == i + 1

    def test_just_below_a_bound_stays_in_its_bucket(self):
        for i, bound in enumerate(BUCKET_BOUNDS):
            below = math.nextafter(bound, 0.0)
            assert bucket_index(below) == i

    def test_below_smallest_bound_is_bucket_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(0.001) == 0
        assert bucket_index(BUCKET_BOUNDS[0] / 2) == 0

    def test_overflow_bucket(self):
        assert bucket_index(math.nextafter(BUCKET_BOUNDS[-1], math.inf)) == (
            len(BUCKET_BOUNDS)
        )
        assert bucket_index(BUCKET_BOUNDS[-1] * 1000) == len(BUCKET_BOUNDS)

    def test_bounds_are_contiguous_log2(self):
        assert len(BUCKET_BOUNDS) + 1 == NUM_BUCKETS
        for lo, hi in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
            assert hi == 2.0 * lo


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 16.0
        assert h.min == 1.0
        assert h.max == 10.0
        assert h.mean == 4.0

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["buckets"] == []

    def test_quantile_returns_bucket_upper_bound(self):
        h = Histogram("h")
        # 1.5 -> le=2.0 bucket; 3.0 -> le=4.0 bucket.
        for _ in range(99):
            h.observe(1.5)
        h.observe(3.0)
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 4.0

    def test_quantile_overflow_bucket_reports_max(self):
        h = Histogram("h")
        big = BUCKET_BOUNDS[-1] * 4
        h.observe(big)
        assert h.quantile(0.5) == big
        assert h.quantile(0.99) == big

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_snapshot_lists_only_nonempty_buckets(self):
        h = Histogram("h")
        h.observe(2.0)   # exact bound: le=2.0
        h.observe(2.5)   # le=4.0
        snap = h.snapshot()
        assert [(b["le"], b["count"]) for b in snap["buckets"]] == [
            (2.0, 1), (4.0, 1)
        ]
        assert snap["p50"] == 2.0

    def test_snapshot_overflow_bucket_label(self):
        h = Histogram("h")
        h.observe(BUCKET_BOUNDS[-1] * 2)
        assert h.snapshot()["buckets"] == [{"le": "+Inf", "count": 1}]


class TestHistogramPercentile:
    """percentile(p) is quantile(p/100) on the shared log2 ladder —
    exact at bucket bounds, like everything else in this module."""

    def test_matches_quantile_on_exact_bounds(self):
        h = Histogram("h")
        for _ in range(99):
            h.observe(1.5)   # le=2.0 bucket
        h.observe(3.0)       # le=4.0 bucket
        assert h.percentile(50.0) == h.quantile(0.5) == 2.0
        assert h.percentile(99.0) == 2.0
        assert h.percentile(100.0) == 4.0

    def test_exact_bucket_boundaries(self):
        h = Histogram("h")
        # One observation on each of four consecutive power-of-two
        # bounds: percentile cut points land on exact bucket bounds.
        for v in (2.0, 4.0, 8.0, 16.0):
            h.observe(v)
        assert h.percentile(25.0) == 2.0
        assert h.percentile(50.0) == 4.0
        assert h.percentile(75.0) == 8.0
        assert h.percentile(100.0) == 16.0

    def test_p0_is_smallest_bucket_bound(self):
        h = Histogram("h")
        h.observe(5.0)  # le=8.0
        assert h.percentile(0.0) == 8.0

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram("h")
        big = BUCKET_BOUNDS[-1] * 2
        h.observe(big)
        assert h.percentile(99.0) == big

    def test_empty_histogram(self):
        assert Histogram("h").percentile(50.0) == 0.0

    @pytest.mark.parametrize("p", [-1.0, 100.5, 200.0])
    def test_range_checked(self, p):
        with pytest.raises(ValueError):
            Histogram("h").percentile(p)


class TestGauge:
    def test_set_inc_dec_and_high_water_mark(self):
        g = Gauge("g")
        g.set(5.0)
        g.inc(3.0)
        g.dec(6.0)
        assert g.value == 2.0
        assert g.max_value == 8.0


class TestMetricsRegistry:
    def test_same_name_and_labels_memoised(self):
        reg = MetricsRegistry()
        assert reg.counter("x", pe=3) is reg.counter("x", pe=3)
        assert reg.counter("x", pe=3) is not reg.counter("x", pe=7)
        assert len(reg) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_series_key_format(self):
        reg = MetricsRegistry()
        assert reg.counter("plain").key == "plain"
        assert reg.histogram("h", node=2, kind="rtr").key == (
            "h{kind=rtr,node=2}"
        )

    def test_snapshot_is_key_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc()
        reg.gauge("g").set(4.5)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"] == {"a": 1, "b": 2}
        assert snap["gauges"]["g"] == {"value": 4.5, "max": 4.5}
        assert snap["histograms"]["h"]["count"] == 1


class TestCountersBridge:
    def test_is_a_counters(self):
        bridge = CountersBridge(MetricsRegistry())
        assert isinstance(bridge, Counters)

    def test_feeds_the_registry(self):
        reg = MetricsRegistry()
        bridge = CountersBridge(reg)
        bridge.add("qp_created", 3)
        bridge.add("qp_created")
        assert bridge["qp_created"] == 4
        assert bridge["never_touched"] == 0
        assert reg.counter("qp_created").value == 4
        assert bridge.as_dict() == {"qp_created": 4}

    def test_reset(self):
        reg = MetricsRegistry()
        bridge = CountersBridge(reg)
        bridge.add("x", 5)
        bridge.reset()
        assert bridge["x"] == 0
        assert reg.counter("x").value == 0

    def test_counter_registered_externally_is_shared(self):
        # The façade and direct registry access see the same series.
        reg = MetricsRegistry()
        bridge = CountersBridge(reg)
        bridge.add("shared")
        reg.counter("shared").inc()
        assert bridge["shared"] == 2

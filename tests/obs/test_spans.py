"""Unit tests for the span tracer: causality, lifecycle, capacity."""

import pytest

from repro.obs import Span, SpanTracer
from repro.sim import Simulator, spawn


def test_ids_are_monotonic_from_one():
    sim = Simulator()
    tr = SpanTracer(sim)
    a = tr.start("a", "pe0")
    b = tr.start("b", "pe0")
    assert (a.span_id, b.span_id) == (1, 2)


def test_span_times_follow_the_simulated_clock():
    sim = Simulator()
    tr = SpanTracer(sim)
    holder = {}

    def proc(sim):
        yield 2.0
        holder["s"] = tr.start("work", "pe0")
        yield 3.0
        tr.finish(holder["s"], outcome="ok")

    spawn(sim, proc(sim), name="p")
    sim.run()
    span = holder["s"]
    assert span.start_us == 2.0
    assert span.end_us == 5.0
    assert span.duration_us == 3.0
    assert not span.open
    assert span.attrs["outcome"] == "ok"


def test_parent_accepts_span_or_raw_id():
    sim = Simulator()
    tr = SpanTracer(sim)
    root = tr.start("root", "pe0")
    by_span = tr.start("child", "pe1", parent=root)
    by_id = tr.start("child", "pe2", parent=root.span_id)
    assert by_span.parent_id == root.span_id
    assert by_id.parent_id == root.span_id
    assert tr.children_of(root) == [by_span, by_id]
    assert tr.children_of(root.span_id) == [by_span, by_id]


def test_double_finish_raises():
    sim = Simulator()
    tr = SpanTracer(sim)
    s = tr.start("x", "pe0")
    tr.finish(s)
    with pytest.raises(ValueError):
        tr.finish(s)


def test_event_is_zero_duration_and_closed():
    sim = Simulator()
    tr = SpanTracer(sim)
    ev = tr.event("qp.RTS", "pe0", kind="transition")
    assert ev.end_us == ev.start_us
    assert ev.duration_us == 0.0
    assert not ev.open


def test_open_span_reports_zero_duration():
    sim = Simulator()
    tr = SpanTracer(sim)
    s = tr.start("x", "pe0")
    assert s.open and s.duration_us == 0.0


def test_capacity_drops_newest_and_counts():
    sim = Simulator()
    tr = SpanTracer(sim, capacity=2)
    kept = [tr.start("a", "pe0"), tr.start("b", "pe0")]
    dropped = tr.start("c", "pe0")
    assert len(tr) == 2
    assert list(tr) == kept
    assert tr.dropped == 1
    # The dropped span is detached but still usable: instrumentation
    # code can finish it without special-casing.
    assert dropped.span_id == 3
    tr.finish(dropped)
    assert not dropped.open
    # ids keep advancing past dropped spans (no reuse).
    assert tr.start("d", "pe0").span_id == 4
    assert tr.dropped == 2


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        SpanTracer(Simulator(), capacity=0)


def test_by_name_filters():
    sim = Simulator()
    tr = SpanTracer(sim)
    tr.start("a", "pe0")
    b1 = tr.start("b", "pe0")
    b2 = tr.event("b", "pe1")
    assert tr.by_name("b") == [b1, b2]
    assert tr.by_name("zzz") == []


def test_span_is_slotted():
    with pytest.raises(AttributeError):
        Span(1, None, "x", "pe0", 0.0).not_a_field = 1

"""Timeline sampler unit tests: config parsing, the ring buffer, and
the sampling loop against a live simulator.

The byte-identity (zero simulated-time effect) contract is pinned in
``tests/sim/test_golden_trace.py``; here we test the mechanism itself.
"""

import pytest

from repro.errors import ConfigError
from repro.obs import (
    SeriesBuffer,
    Timeline,
    TimelineConfig,
    canonical_observe,
    parse_observe,
)
from repro.sim import Simulator


class TestTimelineConfig:
    def test_defaults(self):
        cfg = TimelineConfig()
        assert cfg.enabled and cfg.interval_us == 1000.0
        assert cfg.window == 1 and cfg.capacity == 65536

    @pytest.mark.parametrize("kwargs", [
        {"interval_us": 0.0},
        {"interval_us": -5.0},
        {"window": 0},
        {"capacity": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            TimelineConfig(**kwargs)

    def test_from_dict_round_trip(self):
        cfg = TimelineConfig(interval_us=500.0, window=4, capacity=128)
        assert TimelineConfig.from_dict(cfg.as_dict()) == cfg

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            TimelineConfig.from_dict({"interval": 100})


class TestParseObserve:
    @pytest.mark.parametrize("value", [False, None])
    def test_off(self, value):
        assert parse_observe(value) == (False, None)
        assert canonical_observe(value) is False

    def test_plain_true_has_no_timeline(self):
        assert parse_observe(True) == (True, None)
        assert canonical_observe(True) is True

    def test_timeline_true(self):
        on, cfg = parse_observe({"timeline": True})
        assert on and cfg == TimelineConfig()

    def test_timeline_dict(self):
        on, cfg = parse_observe({"timeline": {"interval_us": 250.0}})
        assert on and cfg.interval_us == 250.0

    def test_timeline_config_shorthand(self):
        cfg = TimelineConfig(window=2)
        assert parse_observe(cfg) == (True, cfg)
        assert canonical_observe(cfg) is cfg

    def test_disabled_timeline_config_means_spans_only(self):
        cfg = TimelineConfig(enabled=False)
        assert parse_observe(cfg) == (True, None)
        assert canonical_observe({"timeline": cfg}) is True

    @pytest.mark.parametrize("value", [
        1, "yes", {"timelines": True}, {"timeline": 3},
    ])
    def test_rejects_malformed(self, value):
        with pytest.raises(ConfigError):
            parse_observe(value)

    def test_canonical_form_is_hashable(self):
        for value in (False, True, {"timeline": {"window": 2}}):
            hash(canonical_observe(value))


class TestSeriesBuffer:
    def test_window_of_one_stores_raw_samples(self):
        buf = SeriesBuffer("gauge", capacity=8, window=1)
        for t, v in [(0.0, 3.0), (1.0, 1.0), (2.0, 7.0)]:
            buf.record(t, v)
        snap = buf.snapshot()
        assert snap["t"] == [0.0, 1.0, 2.0]
        assert snap["min"] == snap["max"] == snap["mean"] == snap["last"] == [
            3.0, 1.0, 7.0
        ]
        assert buf.peak == 7.0 and buf.final == 7.0
        assert snap["dropped"] == 0

    def test_windowed_aggregation(self):
        buf = SeriesBuffer("gauge", capacity=8, window=4)
        for i, v in enumerate([4.0, 2.0, 8.0, 6.0]):
            buf.record(float(i), v)
        snap = buf.snapshot()
        # One stored point stamped at the closing sample's time.
        assert snap["t"] == [3.0]
        assert snap["min"] == [2.0] and snap["max"] == [8.0]
        assert snap["mean"] == [5.0] and snap["last"] == [6.0]

    def test_flush_partial_emits_the_open_window(self):
        buf = SeriesBuffer("gauge", capacity=8, window=4)
        buf.record(0.0, 2.0)
        buf.record(1.0, 4.0)
        assert len(buf) == 0
        buf.flush_partial(1.5)
        snap = buf.snapshot()
        assert snap["t"] == [1.5] and snap["mean"] == [3.0]
        buf.flush_partial(2.0)  # nothing pending: no-op
        assert len(buf) == 1

    def test_ring_overwrites_oldest_and_counts_dropped(self):
        buf = SeriesBuffer("gauge", capacity=3, window=1)
        for i in range(5):
            buf.record(float(i), float(i * 10))
        snap = buf.snapshot()
        assert snap["t"] == [2.0, 3.0, 4.0]
        assert snap["last"] == [20.0, 30.0, 40.0]
        assert snap["dropped"] == 2
        assert buf.final == 40.0
        # Peak reflects only what is still on record.
        assert buf.peak == 40.0

    def test_empty_series(self):
        buf = SeriesBuffer("gauge", capacity=4, window=1)
        assert buf.peak == 0.0 and buf.final == 0.0
        assert buf.snapshot()["t"] == []


class TestTimelineSampling:
    def _timeline(self, **cfg):
        sim = Simulator()
        tl = Timeline(sim, TimelineConfig(**cfg))
        return sim, tl

    def test_samples_on_the_configured_cadence(self):
        sim, tl = self._timeline(interval_us=100.0)
        values = {"x": 0.0}
        tl.add_probe("layer.x", lambda: values["x"])
        tl.start()

        def bump(sim):
            for _ in range(5):
                yield 100.0
                values["x"] += 1.0

        from repro.sim import spawn
        spawn(sim, bump(sim), name="bump")
        sim.run(until=450.0)
        tl.stop()
        snap = tl.snapshot()["series"]["layer.x"]
        # Anchor sample at t=0 plus one per 100us tick, plus the final
        # stop() sample.
        assert snap["t"][0] == 0.0
        assert snap["last"][0] == 0.0
        assert snap["last"][-1] == tl.series["layer.x"].final
        assert tl.samples_taken >= 5

    def test_stop_disarms_the_sampler(self):
        sim, tl = self._timeline(interval_us=50.0)
        tl.add_probe("x", lambda: 1.0)
        tl.start()
        sim.run(until=200.0)
        tl.stop()
        taken = tl.samples_taken
        # The one already-armed tick fires as a no-op; nothing re-arms.
        sim.run()
        assert tl.samples_taken == taken
        assert sim.pending_events == 0

    def test_stop_before_start_is_a_no_op(self):
        _sim, tl = self._timeline()
        tl.stop()
        assert tl.samples_taken == 0

    def test_duplicate_probe_key_rejected(self):
        _sim, tl = self._timeline()
        tl.add_probe("x", lambda: 0.0)
        with pytest.raises(ConfigError):
            tl.add_probe("x", lambda: 1.0)
        # Distinct labels are distinct series.
        tl.add_probe("x", lambda: 1.0, policy="lru")
        assert sorted(tl.series) == ["x", "x{policy=lru}"]

    def test_counter_kind_recorded_in_snapshot(self):
        _sim, tl = self._timeline()
        tl.add_probe("evictions", lambda: 3.0, kind="counter")
        tl.start()
        tl.stop()
        assert tl.snapshot()["series"]["evictions"]["kind"] == "counter"

    def test_bad_probe_kind_rejected(self):
        _sim, tl = self._timeline()
        with pytest.raises(ConfigError):
            tl.add_probe("x", lambda: 0.0, kind="rate")

"""Unit and integration tests for the PMI substrate."""

import pytest

from repro.cluster import Cluster, CostModel
from repro.errors import PMIError
from repro.pmi import KeyValueStore, PMIClient, PMIDomain
from repro.sim import Counters, Simulator, spawn


def make_domain(npes=4, ppn=2, **cost_overrides):
    cost = CostModel().evolve(**cost_overrides)
    sim = Simulator()
    cluster = Cluster(npes=npes, ppn=ppn, cost=cost, name="t")
    domain = PMIDomain(sim, cluster, Counters())
    clients = [PMIClient(domain, r) for r in range(npes)]
    return sim, domain, clients


class TestKVS:
    def test_get_before_commit_fails(self):
        kvs = KeyValueStore()
        with pytest.raises(PMIError):
            kvs.get("missing")

    def test_commit_makes_visible_and_bumps_epoch(self):
        kvs = KeyValueStore()
        kvs.commit({"a": 1, "b": 2})
        assert kvs.get("a") == 1
        assert kvs.epoch == 1
        assert len(kvs) == 2

    def test_duplicate_commit_rejected(self):
        kvs = KeyValueStore()
        kvs.commit({"a": 1})
        with pytest.raises(PMIError):
            kvs.commit({"a": 2})

    def test_get_many_order(self):
        kvs = KeyValueStore()
        kvs.commit({"x": 1, "y": 2, "z": 3})
        assert kvs.get_many(["z", "x"]) == [3, 1]


class TestPutFenceGet:
    def test_put_fence_get_visibility(self):
        sim, domain, clients = make_domain()
        results = {}

        def pe(sim, client):
            yield from client.put(f"ep-{client.rank}", client.rank * 100)
            yield from client.fence()
            vals = []
            for r in range(4):
                vals.append((yield from client.get(f"ep-{r}")))
            results[client.rank] = vals

        for c in clients:
            spawn(sim, pe(sim, c), name=f"pe{c.rank}")
        sim.run()
        assert all(results[r] == [0, 100, 200, 300] for r in range(4))

    def test_get_before_fence_fails(self):
        sim, domain, clients = make_domain()
        failures = []

        def pe0(sim):
            yield from clients[0].put("k", 1)
            try:
                yield from clients[0].get("k")
            except PMIError:
                failures.append(True)

        spawn(sim, pe0(sim))
        sim.run()
        assert failures == [True]

    def test_duplicate_put_rejected(self):
        sim, domain, clients = make_domain()

        def pe0(sim):
            yield from clients[0].put("k", 1)
            with pytest.raises(PMIError):
                yield from clients[0].put("k", 2)

        spawn(sim, pe0(sim))
        sim.run()

    def test_fence_synchronizes_all_ranks(self):
        sim, domain, clients = make_domain(npes=6, ppn=2)
        release = {}

        def pe(sim, client, delay):
            yield sim.timeout(delay)
            yield from client.fence()
            release[client.rank] = sim.now

        for i, c in enumerate(clients):
            spawn(sim, pe(sim, c, delay=float(i * 50)), name=f"pe{c.rank}")
        sim.run()
        times = list(release.values())
        # nobody is released before the last arrival at t=250
        assert min(times) >= 250.0
        # all released within one local RTT + daemon slop of each other
        assert max(times) - min(times) < 200.0

    def test_two_fences_in_sequence(self):
        sim, domain, clients = make_domain()
        log = []

        def pe(sim, client):
            yield from client.put(f"a-{client.rank}", 1)
            yield from client.fence()
            yield from client.put(f"b-{client.rank}", 2)
            yield from client.fence()
            log.append((yield from client.get(f"b-{(client.rank + 1) % 4}")))

        for c in clients:
            spawn(sim, pe(sim, c))
        sim.run()
        assert log == [2, 2, 2, 2]

    def test_get_many_matches_individual_gets(self):
        sim, domain, clients = make_domain()
        out = {}

        def pe(sim, client):
            yield from client.put(f"k-{client.rank}", client.rank)
            yield from client.fence()
            out[client.rank] = yield from client.get_many(
                [f"k-{r}" for r in range(4)]
            )

        for c in clients:
            spawn(sim, pe(sim, c))
        sim.run()
        assert out[2] == [0, 1, 2, 3]


class TestIallgather:
    def test_iallgather_collects_all_values(self):
        sim, domain, clients = make_domain(npes=8, ppn=2)
        out = {}

        def pe(sim, client):
            handle = client.iallgather(f"v{client.rank}")
            result = yield handle.wait()
            out[client.rank] = result

        for c in clients:
            spawn(sim, pe(sim, c))
        sim.run()
        expected = {r: f"v{r}" for r in range(8)}
        assert all(out[r] == expected for r in range(8))

    def test_iallgather_overlaps_with_work(self):
        """The whole point: work proceeds while the allgather runs."""
        sim, domain, clients = make_domain(npes=8, ppn=2)
        overlap_work_done_at = {}
        gather_done_at = {}

        def pe(sim, client):
            handle = client.iallgather(client.rank)
            yield sim.timeout(5.0)  # independent work, e.g. memory registration
            overlap_work_done_at[client.rank] = sim.now
            yield handle.wait()
            gather_done_at[client.rank] = sim.now

        for c in clients:
            spawn(sim, pe(sim, c))
        sim.run()
        # Work finished strictly before the collective for every rank:
        # the non-blocking call did not serialize them.
        for r in range(8):
            assert overlap_work_done_at[r] <= gather_done_at[r]
            assert overlap_work_done_at[r] == pytest.approx(5.0, abs=1.0)

    def test_handle_done_flag(self):
        sim, domain, clients = make_domain(npes=2, ppn=2)
        flags = []

        def pe(sim, client):
            handle = client.iallgather(client.rank)
            flags.append(handle.done)
            yield handle.wait()
            flags.append(handle.done)

        for c in clients:
            spawn(sim, pe(sim, c))
        sim.run()
        assert flags[0] is False and flags[-1] is True

    def test_late_contributor_gets_result_immediately(self):
        sim, domain, clients = make_domain(npes=2, ppn=2)
        out = {}

        def early(sim, client):
            handle = client.iallgather(client.rank)
            out["early"] = yield handle.wait()

        def late(sim, client):
            yield sim.timeout(500.0)
            handle = client.iallgather(client.rank)
            out["late"] = yield handle.wait()

        spawn(sim, early(sim, clients[0]))
        spawn(sim, late(sim, clients[1]))
        sim.run()
        assert out["early"] == out["late"] == {0: 0, 1: 1}


class TestRing:
    def test_ring_gives_neighbors(self):
        sim, domain, clients = make_domain(npes=6, ppn=2)
        out = {}

        def pe(sim, client):
            left, right = yield from client.ring(f"r{client.rank}")
            out[client.rank] = (left, right)

        for c in clients:
            spawn(sim, pe(sim, c))
        sim.run()
        assert out[0] == ("r5", "r1")
        assert out[3] == ("r2", "r4")
        assert out[5] == ("r4", "r0")


class TestFenceScaling:
    def _fence_time(self, npes, ppn=16):
        sim, domain, clients = make_domain(npes=npes, ppn=ppn)
        done = []

        def pe(sim, client):
            yield from client.put(f"k-{client.rank}", b"x" * 48)
            yield from client.fence()
            done.append(sim.now)

        for c in clients:
            spawn(sim, pe(sim, c))
        sim.run()
        return max(done)

    def test_fence_cost_grows_with_job_size(self):
        t64 = self._fence_time(64)
        t256 = self._fence_time(256)
        t1024 = self._fence_time(1024)
        assert t64 < t256 < t1024
        # Growth is dominated by full-KVS dissemination: superlinear in
        # entries per hop, so 16x the PEs costs clearly more than 4x.
        assert t1024 / t64 > 4.0

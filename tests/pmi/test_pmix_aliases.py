"""The paper-faithful PMIX_* functional aliases."""

from repro.cluster import Cluster, CostModel
from repro.pmi import (
    PMIClient,
    PMIDomain,
    PMIX_Iallgather,
    PMIX_Ifence,
    PMIX_Ring,
    PMIX_Wait,
)
from repro.sim import Counters, Simulator, spawn


def make(npes=4, ppn=2):
    sim = Simulator()
    cluster = Cluster(npes=npes, ppn=ppn, cost=CostModel(), name="t")
    domain = PMIDomain(sim, cluster, Counters())
    return sim, [PMIClient(domain, r) for r in range(npes)]


def test_iallgather_alias_roundtrip():
    sim, clients = make()
    out = {}

    def pe(sim, client):
        handle = PMIX_Iallgather(client, client.rank * 3)
        result = yield PMIX_Wait(handle)
        out[client.rank] = result

    for c in clients:
        spawn(sim, pe(sim, c))
    sim.run()
    assert out[0] == {0: 0, 1: 3, 2: 6, 3: 9}


def test_ifence_alias_commits_puts():
    sim, clients = make()
    seen = {}

    def pe(sim, client):
        yield from client.put(f"x-{client.rank}", client.rank)
        handle = PMIX_Ifence(client)
        yield PMIX_Wait(handle)
        seen[client.rank] = yield from client.get(f"x-{(client.rank + 1) % 4}")

    for c in clients:
        spawn(sim, pe(sim, c))
    sim.run()
    assert seen == {0: 1, 1: 2, 2: 3, 3: 0}


def test_ring_alias_neighbors():
    sim, clients = make()
    out = {}

    def pe(sim, client):
        left, right = yield from PMIX_Ring(client, client.rank)
        out[client.rank] = (left, right)

    for c in clients:
        spawn(sim, pe(sim, c))
    sim.run()
    assert out[2] == (1, 3)
    assert out[0] == (3, 1)

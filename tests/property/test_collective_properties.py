"""Property-based tests: collective algorithms and tree geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shmem import tree_parent_children

from ..shmem.conftest import run_shmem


class TestTreeProperties:
    @given(
        npes=st.integers(min_value=1, max_value=200),
        root=st.integers(min_value=0, max_value=199),
    )
    @settings(max_examples=100, deadline=None)
    def test_tree_spans_all_ranks(self, npes, root):
        root %= npes
        # Every rank's parent chain reaches the root without cycles.
        for rank in range(npes):
            cur, hops = rank, 0
            while True:
                parent, _ = tree_parent_children(cur, npes, root)
                if parent is None:
                    break
                cur = parent
                hops += 1
                assert hops <= npes
            assert cur == root

    @given(
        npes=st.integers(min_value=1, max_value=200),
        root=st.integers(min_value=0, max_value=199),
    )
    @settings(max_examples=100, deadline=None)
    def test_children_lists_partition_non_roots(self, npes, root):
        root %= npes
        seen = []
        for rank in range(npes):
            _, children = tree_parent_children(rank, npes, root)
            seen.extend(children)
        assert sorted(seen) == sorted(set(seen))  # nobody has two parents
        assert len(seen) == npes - 1


class TestCollectiveCorrectness:
    @given(
        npes=st.sampled_from([2, 3, 5, 8]),
        values=st.data(),
    )
    @settings(max_examples=12, deadline=None)
    def test_sum_reduction_matches_numpy(self, npes, values):
        vals = values.draw(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=npes, max_size=npes,
            )
        )

        def prog(pe):
            f8 = np.dtype(np.float64).itemsize
            src, dst = pe.shmalloc(f8), pe.shmalloc(f8)
            pe.view(src, np.float64, 1)[0] = vals[pe.mype]
            yield from pe.barrier_all()
            yield from pe.sum_to_all(src, dst, 1)
            return float(pe.view(dst, np.float64, 1)[0])

        result = run_shmem(prog, npes=npes)
        expected = float(np.sum(np.array(vals)))
        # Tree combining order differs from np.sum's left-to-right order,
        # so allow float reassociation error ...
        for got in result.app_results:
            assert got == pytest.approx(expected, rel=1e-12, abs=1e-9)
        # ... but every PE must hold the *bitwise identical* result.
        assert len({repr(v) for v in result.app_results}) == 1

    @given(npes=st.sampled_from([2, 3, 4, 6, 7]))
    @settings(max_examples=8, deadline=None)
    def test_bruck_collect_any_process_count(self, npes):
        def prog(pe):
            src = pe.shmalloc(4)
            dst = pe.shmalloc(4 * pe.npes)
            pe.heap.write(src, pe.mype.to_bytes(4, "little"))
            yield from pe.barrier_all()
            yield from pe.fcollect(src, dst, 4)
            return pe.heap.read(dst, 4 * pe.npes)

        result = run_shmem(prog, npes=npes)
        expected = b"".join(r.to_bytes(4, "little") for r in range(npes))
        assert all(blob == expected for blob in result.app_results)

    @given(root=st.integers(min_value=0, max_value=6))
    @settings(max_examples=7, deadline=None)
    def test_broadcast_from_any_root(self, root):
        npes = 7

        def prog(pe):
            addr = pe.shmalloc(8)
            if pe.mype == root:
                pe.heap.write(addr, b"ROOTDATA")
            yield from pe.barrier_all()
            yield from pe.broadcast(root, addr, 8)
            return pe.heap.read(addr, 8)

        result = run_shmem(prog, npes=npes)
        assert all(blob == b"ROOTDATA" for blob in result.app_results)

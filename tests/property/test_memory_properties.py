"""Property-based tests: memory, heap and segment-codec invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ShmemError
from repro.gasnet import SegmentInfo, decode_segments, encode_segments
from repro.ib.memory import MemoryManager
from repro.shmem.heap import SymmetricHeap


class TestMemoryManager:
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.binary(min_size=1, max_size=50),
            ),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_last_write_wins(self, writes):
        mm = MemoryManager(0)
        region = mm.register(mm.alloc(256))
        shadow = bytearray(256)
        for off, data in writes:
            assume(off + len(data) <= 256)
            mm.rdma_write(region.addr + off, region.rkey, data)
            shadow[off:off + len(data)] = data
        assert mm.rdma_read(region.addr, region.rkey, 256) == bytes(shadow)

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["fetch_add", "cmp_swap"]),
                st.integers(min_value=-(2**31), max_value=2**31),
                st.integers(min_value=-(2**31), max_value=2**31),
            ),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_atomics_match_sequential_model(self, ops):
        mm = MemoryManager(0)
        region = mm.register(mm.alloc(8))
        model = 0
        for op, compare, operand in ops:
            old = mm.atomic(region.addr, region.rkey, op, compare, operand)
            assert old == model
            if op == "fetch_add":
                model = _wrap64(model + operand)
            elif model == compare:
                model = _wrap64(operand)


def _wrap64(x: int) -> int:
    x &= 0xFFFF_FFFF_FFFF_FFFF
    return x - (1 << 64) if x >= (1 << 63) else x


class TestSymmetricHeap:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=512),
                       min_size=1, max_size=30)
    )
    @settings(max_examples=50, deadline=None)
    def test_allocations_are_aligned_and_disjoint(self, sizes):
        mm = MemoryManager(0)
        heap = SymmetricHeap(mm, 64 * 1024)
        spans = []
        for size in sizes:
            addr = heap.shmalloc(size)
            assert addr % 64 == 0
            spans.append((addr, addr + size))
        spans.sort()
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0  # no overlap

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=512),
                       min_size=1, max_size=30)
    )
    @settings(max_examples=50, deadline=None)
    def test_symmetric_sequences_yield_identical_addresses(self, sizes):
        def allocate():
            heap = SymmetricHeap(MemoryManager(0), 64 * 1024)
            return [heap.shmalloc(s) for s in sizes]

        assert allocate() == allocate()

    def test_exhaustion_is_clean(self):
        heap = SymmetricHeap(MemoryManager(0), 4096)
        heap.shmalloc(4000)
        with pytest.raises(ShmemError):
            heap.shmalloc(200)
        heap.reset()
        heap.shmalloc(4000)  # usable again after reset


class TestSegmentCodec:
    SEGMENTS = st.lists(
        st.builds(
            SegmentInfo,
            addr=st.integers(min_value=0, max_value=2**48),
            size=st.integers(min_value=1, max_value=2**40),
            rkey=st.integers(min_value=0, max_value=2**32),
        ),
        max_size=8,
    )

    @given(segments=SEGMENTS)
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, segments):
        assert decode_segments(encode_segments(segments)) == segments

    @given(segments=SEGMENTS)
    @settings(max_examples=50, deadline=None)
    def test_wire_size_is_fixed_per_segment(self, segments):
        assert len(encode_segments(segments)) == 24 * len(segments)

    @given(
        base=st.integers(min_value=0, max_value=2**32),
        rbase=st.integers(min_value=0, max_value=2**32),
        size=st.integers(min_value=1, max_value=2**20),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_translate_preserves_offset(self, base, rbase, size, data):
        seg = SegmentInfo(addr=rbase, size=size, rkey=1)
        offset = data.draw(st.integers(min_value=0, max_value=size - 1))
        assert seg.translate(base + offset, base) == rbase + offset

"""Property-based tests: DES kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngRegistry, Simulator, spawn

DELAYS = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=40,
)


class TestEventOrdering:
    @given(delays=DELAYS)
    @settings(max_examples=50, deadline=None)
    def test_wakeups_are_time_ordered(self, delays):
        sim = Simulator()
        log = []

        def proc(sim, d, tag):
            yield sim.timeout(d)
            log.append((sim.now, tag))

        for i, d in enumerate(delays):
            spawn(sim, proc(sim, d, i))
        sim.run()
        times = [t for t, _ in log]
        assert times == sorted(times)
        assert len(log) == len(delays)
        assert sim.now == max(delays)

    @given(delays=DELAYS)
    @settings(max_examples=30, deadline=None)
    def test_equal_time_wakeups_preserve_spawn_order(self, delays):
        sim = Simulator()
        log = []
        fixed = 5.0

        def proc(sim, tag):
            yield sim.timeout(fixed)
            log.append(tag)

        n = len(delays)
        for i in range(n):
            spawn(sim, proc(sim, i))
        sim.run()
        assert log == list(range(n))

    @given(delays=DELAYS, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_simulation_is_deterministic(self, delays, seed):
        def trace(run_delays):
            sim = Simulator()
            rng = RngRegistry(seed).stream("jitter")
            log = []

            def proc(sim, d, tag):
                yield sim.timeout(d + float(rng.random()))
                log.append((sim.now, tag))

            for i, d in enumerate(run_delays):
                spawn(sim, proc(sim, d, i))
            sim.run()
            return log

        assert trace(delays) == trace(delays)


class TestProcessJoin:
    @given(
        tree=st.recursive(
            st.floats(min_value=0.0, max_value=100.0),
            lambda children: st.lists(children, min_size=1, max_size=3),
            max_leaves=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_join_returns_after_all_descendants(self, tree):
        sim = Simulator()

        def node(sim, spec):
            if isinstance(spec, float):
                yield sim.timeout(spec)
                return spec
            procs = [spawn(sim, node(sim, child)) for child in spec]
            values = yield sim.all_of(procs)
            return sum(v for v in values)

        out = {}

        def main(sim):
            out["total"] = yield spawn(sim, node(sim, tree))
            out["at"] = sim.now

        spawn(sim, main(sim))
        sim.run()

        def total(spec):
            if isinstance(spec, float):
                return spec
            return sum(total(c) for c in spec)

        def depth_max(spec):
            if isinstance(spec, float):
                return spec
            return max(depth_max(c) for c in spec)

        assert out["total"] == total(tree)
        assert out["at"] == depth_max(tree)

"""ResultCache: round trips, LRU byte budget, disk tier, counters."""

import pickle

import pytest

from repro.apps import HelloWorld
from repro.core import RuntimeConfig
from repro.errors import ConfigError
from repro.exec import JobSpec, execute, spec_hash
from repro.serve import PICKLE_PROTOCOL, ResultCache, canonical_payload


def _spec(npes=4, **kw):
    kw.setdefault("config", RuntimeConfig.proposed())
    kw.setdefault("ppn", 2)
    return JobSpec(app=HelloWorld(), npes=npes, **kw)


@pytest.fixture
def filled():
    """A memory-only cache with one executed spec inside."""
    cache = ResultCache()
    spec = _spec()
    result = execute(spec)
    cache.put(spec, result)
    return cache, spec, result


class TestRoundTrip:
    def test_get_returns_equal_result(self, filled):
        cache, spec, result = filled
        assert cache.get(spec) == result

    def test_get_bytes_is_the_canonical_pickle(self, filled):
        cache, spec, result = filled
        payload = cache.get_bytes(spec)
        assert payload == canonical_payload(result)
        # The canonical form is a loadable pickle of the same result.
        assert pickle.loads(payload) == result

    def test_get_returns_a_fresh_object_graph(self, filled):
        cache, spec, _ = filled
        assert cache.get(spec) is not cache.get(spec)

    def test_lookup_by_hash_string(self, filled):
        cache, spec, result = filled
        assert cache.get(spec_hash(spec)) == result

    def test_contains_has_no_counter_side_effects(self, filled):
        cache, spec, _ = filled
        before = cache.stats()
        assert spec in cache
        assert _spec(npes=16) not in cache
        after = cache.stats()
        assert after["hits_memory"] == before["hits_memory"]
        assert after["misses"] == before["misses"]

    def test_miss_returns_none_and_counts(self, filled):
        cache, _, _ = filled
        assert cache.get(_spec(npes=16)) is None
        assert cache.stats()["misses"] == 1

    def test_metadata_is_queryable(self, filled):
        cache, spec, result = filled
        meta = cache.metadata(spec)
        assert meta["app"] == "hello"
        assert meta["npes"] == 4
        assert meta["wall_time_us"] == result.wall_time_us
        assert meta["size"] > 0

    def test_bad_key_type_raises(self, filled):
        cache, _, _ = filled
        with pytest.raises(ConfigError):
            cache.get(42)

    def test_put_is_idempotent(self, filled):
        cache, spec, result = filled
        cache.put(spec, result)
        assert len(cache) == 1
        assert cache.stats()["stores"] == 1


class TestMemoryBudget:
    def test_lru_eviction_under_byte_budget(self):
        specs = [_spec(npes=n) for n in (2, 4, 8)]
        results = [execute(s) for s in specs]
        payloads = [canonical_payload(r) for r in results]
        # Budget for exactly two resident payloads.
        budget = len(payloads[1]) + len(payloads[2])
        cache = ResultCache(memory_budget=budget)
        for spec, result in zip(specs, results):
            cache.put(spec, result)
        # The first entry was least recently used: evicted, and since
        # there is no disk tier it leaves the cache entirely.
        assert cache.get(specs[0]) is None
        assert cache.get(specs[1]) == results[1]
        assert cache.get(specs[2]) == results[2]
        assert cache.stats()["evictions_memory"] >= 1

    def test_get_refreshes_lru_order(self):
        specs = [_spec(npes=n) for n in (2, 4, 8)]
        results = [execute(s) for s in specs]
        payloads = [canonical_payload(r) for r in results]
        # Budget sized so specs 0 and 2 fit together but all three
        # cannot: one eviction on the third put.
        cache = ResultCache(memory_budget=len(payloads[0])
                            + len(payloads[2]))
        cache.put(specs[0], results[0])
        cache.put(specs[1], results[1])
        # Touch spec 0 so spec 1 becomes the LRU victim.
        assert cache.get(specs[0]) is not None
        cache.put(specs[2], results[2])
        assert cache.get(specs[0]) is not None
        assert cache.get(specs[1]) is None

    def test_oversized_payload_is_skipped_not_churned(self):
        cache = ResultCache(memory_budget=16)
        spec = _spec()
        cache.put(spec, execute(spec))
        assert cache.get(spec) is None
        assert cache.stats()["evictions_memory"] == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            ResultCache(memory_budget=-1)


class TestDiskTier:
    def test_write_through_and_warm_restart(self, tmp_path):
        spec = _spec()
        result = execute(spec)
        cache = ResultCache(path=tmp_path)
        cache.put(spec, result)
        # A fresh instance on the same path starts warm.
        warm = ResultCache(path=tmp_path)
        assert warm.contains(spec)
        assert warm.get(spec) == result
        assert warm.get_bytes(spec) == canonical_payload(result)

    def test_memory_eviction_falls_back_to_disk(self, tmp_path):
        spec = _spec()
        result = execute(spec)
        cache = ResultCache(path=tmp_path)
        cache.put(spec, result)
        assert cache.evict_memory() == 1
        assert cache.contains(spec)
        assert cache.get(spec) == result
        assert cache.stats()["hits_disk"] == 1
        # The disk hit promoted the entry back into memory.
        assert cache.get(spec) == result
        assert cache.stats()["hits_memory"] == 1

    def test_disk_budget_evicts_oldest_written(self, tmp_path):
        specs = [_spec(npes=n) for n in (2, 4, 8)]
        results = [execute(s) for s in specs]
        sizes = [len(canonical_payload(r)) for r in results]
        cache = ResultCache(path=tmp_path, disk_budget=sizes[1] + sizes[2])
        for spec, result in zip(specs, results):
            cache.put(spec, result)
        cache.evict_memory()
        assert not cache.contains(specs[0])
        assert cache.get(specs[1]) == results[1]
        assert cache.get(specs[2]) == results[2]
        assert cache.stats()["evictions_disk"] >= 1

    def test_vanished_object_file_is_a_clean_miss(self, tmp_path):
        spec = _spec()
        cache = ResultCache(path=tmp_path)
        key = cache.put(spec, execute(spec))
        cache.evict_memory()
        # Simulate external cleanup of the object store.
        cache._object_path(key).unlink()
        assert cache.get(spec) is None
        assert not cache.contains(spec)

    def test_corrupt_index_raises_config_error(self, tmp_path):
        (tmp_path / "index.json").write_text("{not json")
        with pytest.raises(ConfigError):
            ResultCache(path=tmp_path)


class TestEnumeration:
    def test_hashes_and_entries(self, filled):
        cache, spec, _ = filled
        assert cache.hashes() == [spec_hash(spec)]
        (entry,) = cache.entries()
        assert entry["hash"] == spec_hash(spec)
        assert entry["npes"] == 4
        assert len(cache) == 1

    def test_counters_reach_the_registry(self, filled):
        cache, spec, _ = filled
        cache.get(spec)
        snapshot = cache.registry.snapshot()
        assert snapshot["counters"]["serve.cache.hits{tier=memory}"] == 1
        assert "serve.cache.bytes{tier=memory}" in snapshot["gauges"]

"""Cache-hit exactness: a hit IS the fresh run, byte for byte.

The content-addressed cache's whole claim is that answering from cache
loses nothing: the returned ``JobResult`` — counters, StartupReport,
per-app results, telemetry — pickles to exactly the bytes a fresh
``execute(spec)`` would produce.  These tests pin that byte-identity

* for results produced in-process,
* for results produced across a **process boundary** (the PR-4 pool's
  workers, driven directly since a single-core host would clamp
  ``run_sweep`` to the serial path),
* and after a **memory-evict / disk-refill cycle**, where the payload
  has round-tripped through the object store on disk.
"""

import multiprocessing

import pytest

from repro.apps import HelloWorld
from repro.core import RuntimeConfig
from repro.exec import JobSpec, execute
from repro.exec import pool as pool_mod
from repro.faults import FaultPlan, UDFault
from repro.serve import ResultCache, SweepService, canonical_payload

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="needs fork start method")


def _grid():
    lossy = FaultPlan(name="loss5", ud=(UDFault("drop", prob=0.05),))
    base = dict(app=HelloWorld(), npes=8, testbed="A", ppn=2)
    return [
        JobSpec(config=RuntimeConfig.current(), **base),
        JobSpec(config=RuntimeConfig.proposed(), **base),
        JobSpec(config=RuntimeConfig.proposed(), faults=lossy, **base),
        JobSpec(config=RuntimeConfig.proposed(), observe=True, **base),
    ]


def _fresh_bytes(spec):
    return canonical_payload(execute(spec))


class TestInProcess:
    def test_hit_bytes_equal_fresh_run(self):
        cache = ResultCache()
        for spec in _grid():
            cache.put(spec, execute(spec))
        for spec in _grid():
            assert cache.get_bytes(spec) == _fresh_bytes(spec)

    def test_hit_object_equals_fresh_run(self):
        cache = ResultCache()
        spec = _grid()[3]  # the observe=True spec: telemetry payload
        cache.put(spec, execute(spec))
        hit = cache.get(spec)
        fresh = execute(spec)
        assert hit == fresh
        assert hit.telemetry is not None

    def test_service_populated_cache_is_exact(self):
        cache = ResultCache()
        svc = SweepService(cache, {"a": 1.0})
        for i, spec in enumerate(_grid()):
            svc.submit(float(i), "a", spec)
        svc.drain()
        for spec in _grid():
            assert cache.get_bytes(spec) == _fresh_bytes(spec)


@needs_fork
class TestAcrossProcessBoundary:
    def test_worker_results_cache_byte_identical(self):
        # Results computed in pool workers cross a pickle boundary
        # before they reach the cache; the bytes must still match an
        # in-process fresh run exactly.
        specs = _grid()
        results = pool_mod._run_parallel(specs, 2)
        cache = ResultCache()
        for spec, result in zip(specs, results):
            cache.put(spec, result)
        for spec in specs:
            assert cache.get_bytes(spec) == _fresh_bytes(spec)

    def test_run_trace_prefetch_path_is_exact(self):
        from repro.serve import synthetic_trace

        specs = _grid()[:2]
        trace = synthetic_trace(specs, {"a": 1.0}, arrivals=6, seed=0)
        cache = ResultCache()
        # max_workers=2 routes the prefetch at run_sweep, which clamps
        # to serial on small hosts — either path must be exact.
        SweepService(cache, {"a": 1.0}, max_workers=2).run_trace(trace)
        for spec in specs:
            assert cache.get_bytes(spec) == _fresh_bytes(spec)


class TestEvictRefillCycle:
    def test_bytes_survive_disk_round_trip(self, tmp_path):
        cache = ResultCache(path=tmp_path)
        specs = _grid()
        for spec in specs:
            cache.put(spec, execute(spec))
        assert cache.evict_memory() == len(specs)
        for spec in specs:
            # Served from disk, promoted back to memory...
            assert cache.get_bytes(spec) == _fresh_bytes(spec)
            # ...and the promoted copy is byte-identical too.
            assert cache.get_bytes(spec) == _fresh_bytes(spec)
        stats = cache.stats()
        assert stats["hits_disk"] == len(specs)
        assert stats["hits_memory"] == len(specs)

    def test_bytes_survive_process_restart(self, tmp_path):
        spec = _grid()[2]  # the fault-injected spec
        first = ResultCache(path=tmp_path)
        first.put(spec, execute(spec))
        # A brand-new cache instance (as a new process would build).
        reborn = ResultCache(path=tmp_path)
        assert reborn.get_bytes(spec) == _fresh_bytes(spec)
        assert reborn.get(spec) == execute(spec)

"""SweepService: dedup, fair-share, admission, priorities, determinism."""

import pytest

from repro.apps import HelloWorld
from repro.core import RuntimeConfig
from repro.errors import ConfigError
from repro.serve import ResultCache, SweepService, synthetic_trace
from repro.exec import JobSpec, execute


def _spec(npes=4, **kw):
    kw.setdefault("config", RuntimeConfig.proposed())
    kw.setdefault("ppn", 2)
    return JobSpec(app=HelloWorld(), npes=npes, **kw)


def _service(**kw):
    kw.setdefault("tenants", {"a": 1.0, "b": 1.0})
    kw.setdefault("cache", ResultCache())
    return SweepService(**kw)


class TestValidation:
    def test_needs_a_result_cache(self):
        with pytest.raises(ConfigError):
            SweepService("not-a-cache", {"a": 1.0})

    def test_needs_tenants(self):
        with pytest.raises(ConfigError):
            SweepService(ResultCache(), {})

    def test_weights_must_be_positive(self):
        with pytest.raises(ConfigError):
            SweepService(ResultCache(), {"a": 0.0})

    def test_unknown_tenant_rejected_at_submit(self):
        svc = _service()
        with pytest.raises(ConfigError, match="unknown tenant"):
            svc.submit(0.0, "nobody", _spec())

    def test_submissions_must_be_time_ordered(self):
        svc = _service()
        svc.submit(100.0, "a", _spec())
        with pytest.raises(ConfigError, match="time-ordered"):
            svc.submit(50.0, "a", _spec(npes=8))


class TestDedup:
    def test_first_submission_is_a_miss(self):
        svc = _service()
        assert svc.submit(0.0, "a", _spec()) == "miss"

    def test_cached_spec_is_a_hit(self):
        cache = ResultCache()
        spec = _spec()
        cache.put(spec, execute(spec))
        svc = _service(cache=cache)
        assert svc.submit(0.0, "a", spec) == "hit"

    def test_completed_spec_is_a_hit_even_with_warm_false(self):
        svc = _service()
        spec = _spec()
        svc.submit(0.0, "a", spec)
        svc.drain()
        # warm=False says "cold at trace time" — but the service itself
        # completed it, so it still answers from its own history.
        assert svc.submit(svc.now + 1, "a", spec, warm=False) == "hit"

    def test_inflight_duplicate_attaches(self):
        svc = _service(concurrency=1)
        spec = _spec()
        assert svc.submit(0.0, "a", spec) == "miss"
        assert svc.submit(1.0, "b", spec) == "inflight"
        report = svc.drain()
        assert report.executed == 1
        assert report.dedup_inflight == 1
        # Both submissions completed.
        assert report.tenants["a"]["completed"] == 1
        assert report.tenants["b"]["completed"] == 1

    def test_queued_duplicate_attaches_not_requeues(self):
        # Regression: a duplicate of a spec that is queued but not yet
        # dispatched must attach to the pending entry, not enqueue a
        # second execution.
        svc = _service(concurrency=1)
        blocker, spec = _spec(), _spec(npes=8)
        svc.submit(0.0, "a", blocker)      # occupies the only slot
        assert svc.submit(0.0, "a", spec) == "miss"      # queued
        assert svc.submit(1.0, "b", spec) == "inflight"  # attaches
        report = svc.drain()
        assert report.executed == 2
        assert report.misses == 2
        assert report.dedup_inflight == 1

    def test_hit_latency_is_hit_cost(self):
        cache = ResultCache()
        spec = _spec()
        cache.put(spec, execute(spec))
        svc = _service(cache=cache, hit_cost_us=25.0)
        svc.submit(0.0, "a", spec)
        report = svc.report()
        assert report.tenants["a"]["latency_us"]["max"] == 25.0


class TestAdmission:
    def test_queue_limit_rejects_cold_overflow(self):
        svc = _service(concurrency=1, queue_limit=1)
        specs = [_spec(npes=n) for n in (2, 4, 8)]
        assert svc.submit(0.0, "a", specs[0]) == "miss"   # running
        assert svc.submit(0.0, "a", specs[1]) == "miss"   # queued (1/1)
        assert svc.submit(0.0, "a", specs[2]) == "rejected"
        report = svc.drain()
        assert report.rejected == 1
        assert report.admitted == report.submitted - 1
        assert report.tenants["a"]["rejected"] == 1

    def test_rejection_is_per_tenant(self):
        svc = _service(concurrency=1, queue_limit=1)
        specs = [_spec(npes=n) for n in (2, 4, 8)]
        svc.submit(0.0, "a", specs[0])
        svc.submit(0.0, "a", specs[1])
        # Tenant b's queue is empty; its cold submission is admitted.
        assert svc.submit(0.0, "b", specs[2]) == "miss"

    def test_hits_bypass_the_queue_limit(self):
        cache = ResultCache()
        warm = _spec(npes=16)
        cache.put(warm, execute(warm))
        svc = _service(cache=cache, concurrency=1, queue_limit=1)
        svc.submit(0.0, "a", _spec(npes=2))
        svc.submit(0.0, "a", _spec(npes=4))
        # Queue is full, but a hit never needs a slot.
        assert svc.submit(0.0, "a", warm) == "hit"


class TestScheduling:
    def test_priority_orders_within_a_tenant(self):
        svc = _service(concurrency=1)
        blocker = _spec(npes=2)
        low, high = _spec(npes=4), _spec(npes=8)
        svc.submit(0.0, "a", blocker)
        svc.submit(0.0, "a", low, priority=0)
        svc.submit(0.0, "a", high, priority=5)
        svc.drain()
        # The high-priority spec dispatched first: it finished earlier.
        lat = svc._stats["a"]["latencies"]
        assert len(lat) == 3

    def test_weighted_fair_share_favours_the_heavy_tenant(self):
        # Two tenants with identical backlogs, weights 2:1.  Every job
        # eventually runs, so busy totals match demand — the weight
        # shows up as *latency*: stride scheduling dispatches the
        # heavy tenant roughly twice as often, so its jobs wait less.
        svc = _service(tenants={"heavy": 2.0, "light": 1.0},
                       concurrency=1)
        for i in range(6):
            svc.submit(float(i), "heavy", _spec(npes=4, seed=i))
            svc.submit(float(i), "light", _spec(npes=4, seed=100 + i))
        report = svc.drain()
        heavy = report.tenants["heavy"]["latency_us"]["mean"]
        light = report.tenants["light"]["latency_us"]["mean"]
        assert heavy < light
        # Equal demand under unequal weights is genuinely unfair by
        # weighted shares: Jain's index sits strictly inside (0, 1).
        assert 0.0 < report.fairness < 1.0

    def test_equal_weights_equal_demand_is_fair(self):
        svc = _service(tenants={"a": 1.0, "b": 1.0}, concurrency=1)
        for i in range(4):
            svc.submit(float(i), "a", _spec(npes=4, seed=i))
            svc.submit(float(i), "b", _spec(npes=4, seed=100 + i))
        report = svc.drain()
        assert report.fairness > 0.99

    def test_fairness_is_one_with_a_single_busy_tenant(self):
        svc = _service()
        svc.submit(0.0, "a", _spec())
        assert svc.drain().fairness == 1.0

    def test_makespan_advances_with_work(self):
        svc = _service()
        svc.submit(0.0, "a", _spec())
        report = svc.drain()
        assert report.makespan_us > 0


class TestDeterminism:
    def _run(self):
        specs = [_spec(npes=n, seed=s) for n in (2, 4) for s in (0, 1)]
        trace = synthetic_trace(
            specs, {"a": 2.0, "b": 1.0}, arrivals=24, seed=5)
        svc = SweepService(ResultCache(), {"a": 2.0, "b": 1.0},
                           concurrency=2, hit_cost_us=10.0)
        return svc.run_trace(trace)

    def test_identical_runs_identical_reports(self):
        assert self._run() == self._run()

    def test_no_identity_collisions(self):
        assert self._run().identity_collisions == 0


class TestRunTrace:
    def test_prefetch_does_not_inflate_hit_ratio(self):
        spec = _spec()
        trace = synthetic_trace([spec], {"a": 1.0}, arrivals=1, seed=0)
        svc = _service(tenants={"a": 1.0})
        report = svc.run_trace(trace)
        # One cold arrival: prefetch executed it, but it still counts
        # as the miss it was when the trace started.
        assert report.misses == 1
        assert report.hits == 0
        assert report.executed == 1

    def test_warm_cache_replay_is_all_hits(self):
        specs = [_spec(npes=n) for n in (2, 4)]
        trace = synthetic_trace(specs, {"a": 1.0}, arrivals=8, seed=0)
        cache = ResultCache()
        SweepService(cache, {"a": 1.0}).run_trace(trace)
        report = SweepService(cache, {"a": 1.0}).run_trace(trace)
        assert report.hit_ratio == 1.0
        assert report.executed == 0

    def test_report_format_is_printable(self):
        spec = _spec()
        trace = synthetic_trace([spec], {"a": 1.0}, arrivals=2, seed=0)
        text = _service(tenants={"a": 1.0}).run_trace(trace).format()
        assert "hit_ratio" in text
        assert "tenant a" in text

    def test_service_counters_reach_the_registry(self):
        svc = _service()
        svc.submit(0.0, "a", _spec())
        svc.drain()
        counters = svc.registry.snapshot()["counters"]
        assert counters["serve.submitted{tenant=a}"] == 1
        assert counters["serve.misses"] == 1

"""ResultStore: querying what a service has already computed."""

import pytest

from repro.apps import HelloWorld
from repro.core import RuntimeConfig
from repro.errors import ConfigError
from repro.exec import JobSpec, execute, spec_hash
from repro.serve import ResultCache, ResultStore, StoreEntry


def _spec(npes=4, config=None, **kw):
    kw.setdefault("ppn", 2)
    return JobSpec(app=HelloWorld(), npes=npes,
                   config=config or RuntimeConfig.proposed(), **kw)


@pytest.fixture
def store():
    cache = ResultCache()
    for spec in (_spec(4), _spec(8),
                 _spec(8, RuntimeConfig.current()),
                 _spec(4, testbed="B", ppn=16)):
        cache.put(spec, execute(spec))
    return ResultStore(cache)


class TestQuery:
    def test_needs_a_cache(self):
        with pytest.raises(ConfigError):
            ResultStore("nope")

    def test_entries_are_hash_sorted(self, store):
        hashes = [e.hash for e in store.entries()]
        assert hashes == sorted(hashes)
        assert len(hashes) == 4

    def test_filter_by_npes(self, store):
        assert all(e.npes == 8 for e in store.query(npes=8))
        assert len(store.query(npes=8)) == 2

    def test_filters_and_together(self, store):
        label = RuntimeConfig.proposed().label
        rows = store.query(npes=8, config_label=label)
        assert len(rows) == 1

    def test_filter_by_testbed(self, store):
        (row,) = store.query(testbed="B")
        assert row.ppn == 16

    def test_predicate_filter(self, store):
        rows = store.query(predicate=lambda e: e.wall_time_us > 0)
        assert len(rows) == 4

    def test_no_match_is_empty(self, store):
        assert store.query(app="no-such-app") == []


class TestGet:
    def test_get_by_spec(self, store):
        assert store.get(_spec(4)) == execute(_spec(4))

    def test_get_by_hash(self, store):
        spec = _spec(4)
        assert store.get(spec_hash(spec)) == execute(spec)

    def test_get_miss_raises_key_error(self, store):
        with pytest.raises(KeyError):
            store.get(_spec(32))


class TestSummary:
    def test_summary_aggregates(self, store):
        summary = store.summary()
        assert summary["entries"] == 4
        assert summary["apps"] == {"hello": 4}
        assert summary["sizes"] == {4: 2, 8: 2}
        assert summary["bytes"] > 0

    def test_entry_is_frozen(self, store):
        entry = store.entries()[0]
        assert isinstance(entry, StoreEntry)
        with pytest.raises(AttributeError):
            entry.npes = 99

"""synthetic_trace: determinism, skew, tenant weighting, validation."""

import pytest

from repro.apps import HelloWorld
from repro.core import RuntimeConfig
from repro.errors import ConfigError
from repro.exec import JobSpec, spec_hash
from repro.serve import JobArrival, synthetic_trace


def _specs(n=6):
    return [JobSpec(app=HelloWorld(), npes=2 * (i + 1),
                    config=RuntimeConfig.proposed(), ppn=2)
            for i in range(n)]


TENANTS = {"a": 3.0, "b": 1.0}


class TestJobArrival:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            JobArrival(time_us=-1.0, tenant="a", spec=_specs(1)[0])

    def test_empty_tenant_rejected(self):
        with pytest.raises(ConfigError):
            JobArrival(time_us=0.0, tenant="", spec=_specs(1)[0])

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigError):
            JobArrival(time_us=0.0, tenant="a", spec="nope")


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = synthetic_trace(_specs(), TENANTS, arrivals=50, seed=3)
        b = synthetic_trace(_specs(), TENANTS, arrivals=50, seed=3)
        assert a == b

    def test_different_seed_different_trace(self):
        a = synthetic_trace(_specs(), TENANTS, arrivals=50, seed=3)
        b = synthetic_trace(_specs(), TENANTS, arrivals=50, seed=4)
        assert a != b


class TestShape:
    def test_times_are_strictly_ordered_and_positive(self):
        trace = synthetic_trace(_specs(), TENANTS, arrivals=50, seed=0)
        times = [a.time_us for a in trace]
        assert all(t > 0 for t in times)
        assert times == sorted(times)

    def test_zipf_skew_front_loads_popularity(self):
        specs = _specs(8)
        trace = synthetic_trace(specs, TENANTS, arrivals=400, seed=0,
                                skew=1.5)
        head = spec_hash(specs[0])
        tail = spec_hash(specs[-1])
        counts = {}
        for a in trace:
            k = spec_hash(a.spec)
            counts[k] = counts.get(k, 0) + 1
        assert counts.get(head, 0) > counts.get(tail, 0)

    def test_zero_skew_is_roughly_uniform(self):
        specs = _specs(2)
        trace = synthetic_trace(specs, TENANTS, arrivals=400, seed=0,
                                skew=0.0)
        first = sum(1 for a in trace if a.spec == specs[0])
        assert 120 < first < 280

    def test_tenant_weights_shape_traffic(self):
        trace = synthetic_trace(_specs(), {"a": 9.0, "b": 1.0},
                                arrivals=300, seed=0)
        a_count = sum(1 for arr in trace if arr.tenant == "a")
        assert a_count > 200

    def test_priorities_come_from_the_given_set(self):
        trace = synthetic_trace(_specs(), TENANTS, arrivals=100, seed=0,
                                priorities=(3, 7))
        assert {a.priority for a in trace} == {3, 7}

    def test_mean_interarrival_scales_times(self):
        fast = synthetic_trace(_specs(), TENANTS, arrivals=100, seed=0,
                               mean_interarrival_us=1_000.0)
        slow = synthetic_trace(_specs(), TENANTS, arrivals=100, seed=0,
                               mean_interarrival_us=100_000.0)
        assert slow[-1].time_us > fast[-1].time_us * 10


class TestValidation:
    def test_needs_specs(self):
        with pytest.raises(ConfigError):
            synthetic_trace([], TENANTS, arrivals=10)

    def test_needs_tenants(self):
        with pytest.raises(ConfigError):
            synthetic_trace(_specs(), {}, arrivals=10)

    def test_rejects_non_positive_weights(self):
        with pytest.raises(ConfigError):
            synthetic_trace(_specs(), {"a": -1.0}, arrivals=10)

    def test_rejects_zero_arrivals(self):
        with pytest.raises(ConfigError):
            synthetic_trace(_specs(), TENANTS, arrivals=0)

    def test_rejects_bad_interarrival(self):
        with pytest.raises(ConfigError):
            synthetic_trace(_specs(), TENANTS, arrivals=10,
                            mean_interarrival_us=0.0)

    def test_rejects_negative_skew(self):
        with pytest.raises(ConfigError):
            synthetic_trace(_specs(), TENANTS, arrivals=10, skew=-0.1)

    def test_rejects_empty_priorities(self):
        with pytest.raises(ConfigError):
            synthetic_trace(_specs(), TENANTS, arrivals=10, priorities=())

    def test_rejects_non_spec_universe(self):
        with pytest.raises(ConfigError):
            synthetic_trace(["nope"], TENANTS, arrivals=10)

"""Fixtures: run small OpenSHMEM programs through the full Job stack."""

from typing import Callable, List

import pytest

from repro.core import Job, RuntimeConfig
from repro.apps import Application


class FuncApp(Application):
    """Wrap a ``fn(pe) -> Generator`` as an Application."""

    name = "func"

    def __init__(self, fn: Callable, uses_mpi: bool = False) -> None:
        self.fn = fn
        self.uses_mpi = uses_mpi

    def run(self, pe):
        result = yield from self.fn(pe)
        return result


def run_shmem(fn: Callable, npes: int = 4, config: RuntimeConfig = None,
              uses_mpi: bool = False, **job_kw):
    """Run ``fn`` on every PE; returns the JobResult."""
    config = config or RuntimeConfig.proposed(heap_backing_kb=256)
    job = Job(npes=npes, config=config, **job_kw)
    return job.run(FuncApp(fn, uses_mpi=uses_mpi))


@pytest.fixture(params=["ondemand", "static"])
def any_mode_config(request):
    """Parametrised over both connection designs."""
    if request.param == "static":
        return RuntimeConfig.current(heap_backing_kb=256)
    return RuntimeConfig.proposed(heap_backing_kb=256)

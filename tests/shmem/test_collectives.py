"""OpenSHMEM collective correctness in both connection modes."""

import numpy as np
import pytest

from repro.shmem import tree_parent_children

from .conftest import run_shmem


class TestTreeGeometry:
    def test_root_has_no_parent(self):
        parent, children = tree_parent_children(0, 8)
        assert parent is None
        assert children == [1, 2]

    def test_parent_child_consistency(self):
        n = 13
        for rank in range(n):
            parent, children = tree_parent_children(rank, n)
            for c in children:
                p, _ = tree_parent_children(c, n)
                assert p == rank
            if parent is not None:
                _, pc = tree_parent_children(parent, n)
                assert rank in pc

    def test_rotation_moves_root(self):
        parent, _ = tree_parent_children(5, 9, root=5)
        assert parent is None
        parent, _ = tree_parent_children(0, 9, root=5)
        assert parent is not None


class TestBarrier:
    def test_barrier_synchronizes(self, any_mode_config):
        def prog(pe):
            yield pe.sim.timeout(float(pe.mype) * 100.0)
            yield from pe.barrier_all()
            return pe.sim.now

        result = run_shmem(prog, npes=6, config=any_mode_config)
        times = result.app_results
        # All released at/after the slowest arrival.
        assert max(times) - min(times) < 100.0

    def test_repeated_barriers(self):
        def prog(pe):
            for _ in range(5):
                yield from pe.barrier_all()
            return True

        result = run_shmem(prog, npes=5)
        assert all(result.app_results)


class TestBroadcast:
    def test_root_value_everywhere(self, any_mode_config):
        def prog(pe):
            addr = pe.shmalloc(16)
            if pe.mype == 2:
                pe.heap.write(addr, b"broadcast-value!")
            yield from pe.barrier_all()
            yield from pe.broadcast(2, addr, 16)
            return pe.heap.read(addr, 16)

        result = run_shmem(prog, npes=7, config=any_mode_config)
        assert all(v == b"broadcast-value!" for v in result.app_results)


class TestCollect:
    @pytest.mark.parametrize("npes", [2, 3, 7, 8])
    def test_fcollect_concatenates_in_rank_order(self, npes):
        def prog(pe):
            f8 = np.dtype(np.float64).itemsize
            src = pe.shmalloc(2 * f8)
            dst = pe.shmalloc(2 * f8 * pe.npes)
            pe.view(src, np.float64, 2)[:] = [pe.mype, pe.mype * 10]
            yield from pe.barrier_all()
            yield from pe.fcollect(src, dst, 2 * f8)
            return pe.view(dst, np.float64, 2 * pe.npes).copy()

        result = run_shmem(prog, npes=npes)
        expected = np.array(
            [[r, r * 10] for r in range(npes)], dtype=np.float64
        ).ravel()
        for arr in result.app_results:
            assert np.allclose(arr, expected)


class TestReductions:
    def test_sum_to_all(self, any_mode_config):
        def prog(pe):
            f8 = np.dtype(np.float64).itemsize
            src = pe.shmalloc(3 * f8)
            dst = pe.shmalloc(3 * f8)
            pe.view(src, np.float64, 3)[:] = [1.0, pe.mype, pe.mype**2]
            yield from pe.barrier_all()
            yield from pe.sum_to_all(src, dst, 3)
            return pe.view(dst, np.float64, 3).copy()

        npes = 6
        result = run_shmem(prog, npes=npes, config=any_mode_config)
        expected = [
            npes,
            sum(range(npes)),
            sum(r**2 for r in range(npes)),
        ]
        for arr in result.app_results:
            assert np.allclose(arr, expected)

    def test_max_to_all(self):
        def prog(pe):
            f8 = np.dtype(np.float64).itemsize
            src, dst = pe.shmalloc(f8), pe.shmalloc(f8)
            pe.view(src, np.float64, 1)[0] = float((pe.mype * 37) % 11)
            yield from pe.barrier_all()
            yield from pe.max_to_all(src, dst, 1)
            return float(pe.view(dst, np.float64, 1)[0])

        npes = 8
        result = run_shmem(prog, npes=npes)
        expected = max(float((r * 37) % 11) for r in range(npes))
        assert all(v == expected for v in result.app_results)

    def test_int_sum_reduction(self):
        def prog(pe):
            i8 = np.dtype(np.int64).itemsize
            src, dst = pe.shmalloc(i8), pe.shmalloc(i8)
            pe.view(src, np.int64, 1)[0] = pe.mype + 1
            yield from pe.barrier_all()
            yield from pe.reduce(src, dst, 1, np.int64, "sum")
            return int(pe.view(dst, np.int64, 1)[0])

        result = run_shmem(prog, npes=5)
        assert all(v == 15 for v in result.app_results)

    def test_consecutive_collectives_do_not_crosstalk(self):
        def prog(pe):
            f8 = np.dtype(np.float64).itemsize
            src, dst = pe.shmalloc(f8), pe.shmalloc(f8)
            outs = []
            for round_no in range(3):
                pe.view(src, np.float64, 1)[0] = float(round_no)
                yield from pe.sum_to_all(src, dst, 1)
                outs.append(float(pe.view(dst, np.float64, 1)[0]))
            return outs

        npes = 4
        result = run_shmem(prog, npes=npes)
        for outs in result.app_results:
            assert outs == [0.0, 1.0 * npes, 2.0 * npes]


class TestConnectionFootprint:
    def test_barrier_uses_few_connections_on_demand(self):
        def prog(pe):
            yield from pe.barrier_all()
            return len(pe.conduit.touched_peers)

        result = run_shmem(prog, npes=16, cluster=None)
        # Binary-tree barrier: at most parent + 2 children peers.
        assert max(result.app_results) <= 3

    def test_collect_touches_log_peers(self):
        def prog(pe):
            f8 = np.dtype(np.float64).itemsize
            src = pe.shmalloc(f8)
            dst = pe.shmalloc(f8 * pe.npes)
            yield from pe.barrier_all()
            before = set(pe.conduit.touched_peers)
            yield from pe.fcollect(src, dst, f8)
            return len(set(pe.conduit.touched_peers) - before)

        result = run_shmem(prog, npes=16)
        # Bruck allgather: ceil(log2 16) = 4 distinct send targets
        # (minus any that were already barrier peers).
        assert max(result.app_results) <= 4

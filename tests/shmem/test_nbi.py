"""Non-blocking implicit RMA (put_nbi / get_nbi / quiet)."""

import numpy as np
import pytest

from .conftest import run_shmem


class TestPutNbi:
    def test_all_nbi_puts_land_after_quiet(self, any_mode_config):
        def prog(pe):
            f8 = np.dtype(np.int64).itemsize
            cells = pe.shmalloc(pe.npes * f8)
            yield from pe.barrier_all()
            for peer in range(pe.npes):
                if peer == pe.mype:
                    continue
                yield from pe.put_nbi(
                    peer, cells + pe.mype * f8,
                    np.int64(pe.mype + 1).tobytes(),
                )
            yield from pe.quiet()
            yield from pe.barrier_all()
            got = pe.view(cells, np.int64, pe.npes).copy()
            return got

        result = run_shmem(prog, npes=6, config=any_mode_config)
        for rank, got in enumerate(result.app_results):
            for src in range(6):
                if src != rank:
                    assert got[src] == src + 1, (rank, src)

    def test_nbi_pipelines_faster_than_blocking(self):
        """Many puts to one cross-node peer: nbi overlaps the round
        trips, blocking serialises them."""

        def make(blocking):
            def prog(pe):
                buf = pe.shmalloc(64 * 32)
                yield from pe.barrier_all()
                dt = 0.0
                if pe.mype == 0:
                    # Warm the connection so the handshake is not timed.
                    yield from pe.put(pe.npes - 1, buf, b"w" * 64)
                    start = pe.sim.now
                    for i in range(32):
                        if blocking:
                            yield from pe.put(
                                pe.npes - 1, buf + 64 * i, b"z" * 64
                            )
                        else:
                            yield from pe.put_nbi(
                                pe.npes - 1, buf + 64 * i, b"z" * 64
                            )
                    yield from pe.quiet()
                    dt = pe.sim.now - start
                yield from pe.barrier_all()
                return dt

            return prog

        from repro.cluster import cluster_a

        blocking = run_shmem(
            make(True), npes=4, cluster=cluster_a(4, ppn=1)
        ).app_results[0]
        nbi = run_shmem(
            make(False), npes=4, cluster=cluster_a(4, ppn=1)
        ).app_results[0]
        assert nbi < 0.7 * blocking

    def test_quiet_with_nothing_outstanding_is_cheap(self):
        def prog(pe):
            t0 = pe.sim.now
            yield from pe.quiet()
            return pe.sim.now - t0

        result = run_shmem(prog, npes=2)
        assert all(dt < 5.0 for dt in result.app_results)


class TestGetNbi:
    def test_get_nbi_lands_in_local_buffer(self, any_mode_config):
        def prog(pe):
            src = pe.shmalloc(16)
            dst = pe.shmalloc(16)
            pe.heap.write(src, f"data-of-{pe.mype}".encode().ljust(16, b"\0"))
            yield from pe.barrier_all()
            left = (pe.mype - 1) % pe.npes
            yield from pe.get_nbi(left, src, dst, 16)
            yield from pe.quiet()
            return pe.heap.read(dst, 16).rstrip(b"\0").decode()

        result = run_shmem(prog, npes=4, config=any_mode_config)
        for rank, got in enumerate(result.app_results):
            assert got == f"data-of-{(rank - 1) % 4}"

    def test_self_get_nbi(self):
        def prog(pe):
            src, dst = pe.shmalloc(8), pe.shmalloc(8)
            pe.heap.write(src, b"selfdata")
            yield from pe.get_nbi(pe.mype, src, dst, 8)
            yield from pe.quiet()
            yield from pe.barrier_all()
            return pe.heap.read(dst, 8)

        result = run_shmem(prog, npes=2)
        assert result.app_results == [b"selfdata", b"selfdata"]

    def test_mixed_nbi_ops_drain_together(self):
        def prog(pe):
            a = pe.shmalloc(8)
            b = pe.shmalloc(8)
            c = pe.shmalloc(8)
            pe.heap.write(a, np.int64(pe.mype + 40).tobytes())
            yield from pe.barrier_all()
            peer = (pe.mype + 1) % pe.npes
            yield from pe.put_nbi(peer, b, np.int64(pe.mype).tobytes())
            yield from pe.get_nbi(peer, a, c, 8)
            yield from pe.quiet()
            yield from pe.barrier_all()
            got_b = pe.view(b, np.int64, 1)[0]
            got_c = pe.view(c, np.int64, 1)[0]
            return int(got_b), int(got_c)

        result = run_shmem(prog, npes=4)
        for rank, (b_val, c_val) in enumerate(result.app_results):
            assert b_val == (rank - 1) % 4
            assert c_val == ((rank + 1) % 4) + 40

"""OpenSHMEM RMA + atomics semantics, in both connection modes."""

import numpy as np
import pytest

from repro.errors import ShmemError

from .conftest import run_shmem


class TestPutGet:
    def test_put_then_get_roundtrip(self, any_mode_config):
        def prog(pe):
            addr = pe.shmalloc(64)
            yield from pe.barrier_all()
            right = (pe.mype + 1) % pe.npes
            msg = f"from-{pe.mype}".encode().ljust(16, b"\0")
            yield from pe.put(right, addr, msg)
            yield from pe.barrier_all()
            mine = pe.heap.read(addr, 16).rstrip(b"\0").decode()
            left = (pe.mype - 1) % pe.npes
            fetched = yield from pe.get(left, addr, 16)
            return mine, fetched.rstrip(b"\0").decode()

        result = run_shmem(prog, npes=4, config=any_mode_config)
        for rank, (mine, fetched) in enumerate(result.app_results):
            assert mine == f"from-{(rank - 1) % 4}"
            assert fetched == f"from-{(rank - 2) % 4}"

    def test_self_put_get(self):
        def prog(pe):
            addr = pe.shmalloc(8)
            yield from pe.put(pe.mype, addr, b"selfself")
            data = yield from pe.get(pe.mype, addr, 8)
            return data

        result = run_shmem(prog, npes=2)
        assert result.app_results == [b"selfself", b"selfself"]

    def test_typed_array_put(self, any_mode_config):
        def prog(pe):
            f8 = np.dtype(np.float64).itemsize
            addr = pe.shmalloc(8 * f8)
            yield from pe.barrier_all()
            payload = np.arange(8, dtype=np.float64) * (pe.mype + 1)
            yield from pe.put_array((pe.mype + 1) % pe.npes, addr, payload)
            yield from pe.barrier_all()
            return pe.view(addr, np.float64, 8).copy()

        result = run_shmem(prog, npes=4, config=any_mode_config)
        for rank, arr in enumerate(result.app_results):
            src = (rank - 1) % 4
            assert np.allclose(arr, np.arange(8) * (src + 1))

    def test_invalid_pe_rejected(self):
        def prog(pe):
            addr = pe.shmalloc(8)
            try:
                yield from pe.put(99, addr, b"x")
            except ShmemError:
                return "caught"
            return "missed"

        result = run_shmem(prog, npes=2)
        assert result.app_results == ["caught", "caught"]

    def test_wait_until_sees_remote_put(self):
        def prog(pe):
            f8 = np.dtype(np.int64).itemsize
            flag = pe.shmalloc(f8)
            yield from pe.barrier_all()
            if pe.mype == 0:
                yield pe.sim.timeout(500.0)
                yield from pe.put_value(1, flag, 42)
                return None
            yield from pe.wait_until(flag, "eq", 42)
            return pe.sim.now

        result = run_shmem(prog, npes=2)
        assert result.app_results[1] is not None


class TestAtomics:
    def test_fetch_add_all_to_one(self, any_mode_config):
        def prog(pe):
            f8 = np.dtype(np.int64).itemsize
            counter = pe.shmalloc(f8)
            yield from pe.barrier_all()
            old = yield from pe.atomic_fetch_add(0, counter, 1)
            yield from pe.barrier_all()
            final = pe.view(counter, np.int64, 1)[0] if pe.mype == 0 else -1
            return old, int(final)

        result = run_shmem(prog, npes=6, config=any_mode_config)
        olds = sorted(o for o, _ in result.app_results)
        assert olds == list(range(6))  # each got a unique ticket
        assert result.app_results[0][1] == 6

    def test_fetch_inc_and_fetch(self):
        def prog(pe):
            f8 = np.dtype(np.int64).itemsize
            counter = pe.shmalloc(f8)
            yield from pe.barrier_all()
            yield from pe.atomic_inc(0, counter)
            yield from pe.barrier_all()
            value = yield from pe.atomic_fetch(0, counter)
            return value

        result = run_shmem(prog, npes=4)
        assert all(v == 4 for v in result.app_results)

    def test_compare_swap_single_winner(self, any_mode_config):
        def prog(pe):
            f8 = np.dtype(np.int64).itemsize
            lock = pe.shmalloc(f8)
            yield from pe.barrier_all()
            old = yield from pe.atomic_compare_swap(
                0, lock, 0, pe.mype + 100
            )
            return old == 0  # True only for the single winner

        result = run_shmem(prog, npes=5, config=any_mode_config)
        assert sum(result.app_results) == 1

    def test_swap_returns_previous(self):
        def prog(pe):
            f8 = np.dtype(np.int64).itemsize
            cell = pe.shmalloc(f8)
            yield from pe.barrier_all()
            if pe.mype == 0:
                yield from pe.atomic_set(1, cell, 7)
                yield from pe.barrier_all()
                return None
            yield from pe.barrier_all()
            old = yield from pe.atomic_swap(1, cell, 9)
            new = pe.view(cell, np.int64, 1)[0]
            return old, int(new)

        result = run_shmem(prog, npes=2)
        assert result.app_results[1] == (7, 9)


class TestHeapSemantics:
    def test_symmetric_allocation_same_offsets(self):
        def prog(pe):
            a = pe.shmalloc(100)
            b = pe.shmalloc(100)
            yield from pe.barrier_all()
            return a, b

        result = run_shmem(prog, npes=3)
        assert len({r for r in result.app_results}) == 1  # identical everywhere

    def test_shfree_and_reuse(self):
        def prog(pe):
            a = pe.shmalloc(64)
            pe.shfree(a)
            with pytest.raises(ShmemError):
                pe.shfree(a)
            yield from pe.barrier_all()
            return True

        result = run_shmem(prog, npes=2)
        assert all(result.app_results)

    def test_backing_exhaustion_message(self):
        def prog(pe):
            with pytest.raises(ShmemError, match="heap_backing_kb"):
                pe.shmalloc(10 * 1024 * 1024)
            yield from pe.barrier_all()
            return True

        result = run_shmem(prog, npes=2)
        assert all(result.app_results)

"""Active-set collectives, distributed locks, strided RMA, alltoall."""

import numpy as np
import pytest

from repro.errors import ShmemError
from repro.shmem import ActiveSet

from .conftest import run_shmem


class TestActiveSetMath:
    def test_world(self):
        aset = ActiveSet.world(8)
        assert aset.members() == list(range(8))

    def test_strided_members(self):
        aset = ActiveSet(pe_start=1, log_pe_stride=1, pe_size=3)
        assert aset.members() == [1, 3, 5]
        assert aset.contains(3) and not aset.contains(2)
        assert aset.team_rank(5) == 2
        assert aset.global_rank(1) == 3

    def test_membership_errors(self):
        aset = ActiveSet(pe_start=0, log_pe_stride=2, pe_size=2)
        with pytest.raises(ShmemError):
            aset.team_rank(1)
        with pytest.raises(ShmemError):
            aset.global_rank(2)
        with pytest.raises(ShmemError):
            ActiveSet(pe_start=-1, log_pe_stride=0, pe_size=1)


class TestTeamCollectives:
    def test_team_barrier_only_synchronizes_members(self):
        aset = ActiveSet(pe_start=0, log_pe_stride=1, pe_size=4)  # 0,2,4,6

        def prog(pe):
            if aset.contains(pe.mype):
                yield pe.sim.timeout(float(pe.mype) * 50)
                yield from pe.team_barrier(aset)
                return pe.sim.now
            # Non-members do something unrelated and never block.
            yield pe.sim.timeout(1.0)
            return None

        result = run_shmem(prog, npes=8)
        times = [t for t in result.app_results if t is not None]
        assert len(times) == 4
        assert max(times) - min(times) < 50.0

    def test_team_broadcast_team_relative_root(self):
        aset = ActiveSet(pe_start=1, log_pe_stride=1, pe_size=3)  # 1,3,5

        def prog(pe):
            addr = pe.shmalloc(8)
            if pe.mype == 3:  # team rank 1
                pe.heap.write(addr, b"TEAMDATA")
            yield from pe.barrier_all()
            if aset.contains(pe.mype):
                yield from pe.team_broadcast(aset, 1, addr, 8)
            yield from pe.barrier_all()
            return pe.heap.read(addr, 8)

        result = run_shmem(prog, npes=6)
        for rank, blob in enumerate(result.app_results):
            if rank in (1, 3, 5):
                assert blob == b"TEAMDATA"
            else:
                assert blob == b"\0" * 8  # untouched on non-members

    def test_team_reduce_over_subset(self):
        aset = ActiveSet(pe_start=0, log_pe_stride=0, pe_size=3)  # 0,1,2

        def prog(pe):
            f8 = np.dtype(np.float64).itemsize
            src, dst = pe.shmalloc(f8), pe.shmalloc(f8)
            pe.view(src, np.float64, 1)[0] = float(pe.mype + 1)
            yield from pe.barrier_all()
            if aset.contains(pe.mype):
                yield from pe.team_reduce(aset, src, dst, 1, np.float64)
            yield from pe.barrier_all()
            return float(pe.view(dst, np.float64, 1)[0])

        result = run_shmem(prog, npes=6)
        assert result.app_results[:3] == [6.0, 6.0, 6.0]
        assert result.app_results[3:] == [0.0, 0.0, 0.0]

    def test_team_fcollect_team_order(self):
        aset = ActiveSet(pe_start=1, log_pe_stride=1, pe_size=3)  # 1,3,5

        def prog(pe):
            src = pe.shmalloc(4)
            dst = pe.shmalloc(4 * 3)
            pe.heap.write(src, pe.mype.to_bytes(4, "little"))
            yield from pe.barrier_all()
            if aset.contains(pe.mype):
                yield from pe.team_fcollect(aset, src, dst, 4)
            yield from pe.barrier_all()
            return pe.heap.read(dst, 12)

        result = run_shmem(prog, npes=6)
        expected = b"".join(r.to_bytes(4, "little") for r in (1, 3, 5))
        for rank in (1, 3, 5):
            assert result.app_results[rank] == expected


class TestAlltoall:
    @pytest.mark.parametrize("npes", [2, 4, 5])
    def test_alltoall_transpose(self, npes):
        def prog(pe):
            nb = 8
            src = pe.shmalloc(nb * pe.npes)
            dst = pe.shmalloc(nb * pe.npes)
            view = pe.view(src, np.int64, pe.npes)
            view[:] = [pe.mype * 100 + d for d in range(pe.npes)]
            yield from pe.barrier_all()
            yield from pe.alltoall(src, dst, nb)
            return pe.view(dst, np.int64, pe.npes).copy()

        result = run_shmem(prog, npes=npes)
        for rank, got in enumerate(result.app_results):
            assert list(got) == [s * 100 + rank for s in range(npes)]

    def test_team_alltoall_subset(self):
        aset = ActiveSet(pe_start=0, log_pe_stride=1, pe_size=2)  # 0, 2

        def prog(pe):
            nb = 8
            src = pe.shmalloc(nb * 2)
            dst = pe.shmalloc(nb * 2)
            if aset.contains(pe.mype):
                pe.view(src, np.int64, 2)[:] = [pe.mype * 10, pe.mype * 10 + 1]
            yield from pe.barrier_all()
            if aset.contains(pe.mype):
                yield from pe.team_alltoall(aset, src, dst, nb)
            yield from pe.barrier_all()
            return pe.view(dst, np.int64, 2).copy()

        result = run_shmem(prog, npes=4)
        # team rank 0 == PE0, team rank 1 == PE2
        assert list(result.app_results[0]) == [0, 20]
        assert list(result.app_results[2]) == [1, 21]


class TestLocks:
    def test_mutual_exclusion_increments(self):
        def prog(pe):
            i8 = np.dtype(np.int64).itemsize
            lock = pe.shmalloc(i8)
            counter = pe.shmalloc(i8)
            yield from pe.barrier_all()
            for _ in range(3):
                yield from pe.set_lock(lock)
                # Non-atomic read-modify-write, protected by the lock.
                value = yield from pe.get_value(0, counter)
                yield pe.sim.timeout(2.0)  # widen the race window
                yield from pe.put_value(0, counter, value + 1)
                yield from pe.clear_lock(lock)
            yield from pe.barrier_all()
            return (yield from pe.get_value(0, counter))

        npes = 6
        result = run_shmem(prog, npes=npes)
        assert all(v == 3 * npes for v in result.app_results)

    def test_clear_unheld_lock_raises(self):
        def prog(pe):
            lock = pe.shmalloc(8)
            yield from pe.barrier_all()
            if pe.mype == 0:
                with pytest.raises(ShmemError):
                    yield from pe.clear_lock(lock)
            yield from pe.barrier_all()
            return True

        assert all(run_shmem(prog, npes=2).app_results)

    def test_test_lock_single_winner(self):
        def prog(pe):
            lock = pe.shmalloc(8)
            yield from pe.barrier_all()
            won = yield from pe.test_lock(lock)
            yield from pe.barrier_all()
            if won:
                yield from pe.clear_lock(lock)
            return won

        result = run_shmem(prog, npes=5)
        assert sum(result.app_results) == 1


class TestStrided:
    def test_iput_strided_scatter(self):
        def prog(pe):
            i8 = 8
            src = pe.shmalloc(4 * i8)
            dst = pe.shmalloc(8 * i8)
            yield from pe.barrier_all()
            if pe.mype == 0:
                pe.view(src, np.int64, 4)[:] = [10, 11, 12, 13]
                # scatter every element to every *second* slot at PE1
                yield from pe.iput(1, dst, src, dst_stride=2, src_stride=1,
                                   count=4)
            yield from pe.barrier_all()
            return pe.view(dst, np.int64, 8).copy()

        result = run_shmem(prog, npes=2)
        got = list(result.app_results[1])
        assert got == [10, 0, 11, 0, 12, 0, 13, 0]

    def test_iget_strided_gather(self):
        def prog(pe):
            i8 = 8
            src = pe.shmalloc(8 * i8)
            dst = pe.shmalloc(4 * i8)
            pe.view(src, np.int64, 8)[:] = np.arange(8) + pe.mype * 100
            yield from pe.barrier_all()
            if pe.mype == 0:
                yield from pe.iget(1, dst, src, dst_stride=1, src_stride=2,
                                   count=4)
            yield from pe.barrier_all()
            return pe.view(dst, np.int64, 4).copy()

        result = run_shmem(prog, npes=2)
        assert list(result.app_results[0]) == [100, 102, 104, 106]

    def test_contiguous_fast_path(self):
        def prog(pe):
            src = pe.shmalloc(32)
            dst = pe.shmalloc(32)
            pe.view(src, np.int64, 4)[:] = [1, 2, 3, 4]
            yield from pe.barrier_all()
            delta = None
            if pe.mype == 0:
                before = pe.counters["shmem.puts"]
                yield from pe.iput(1, dst, src, 1, 1, 4)
                delta = pe.counters["shmem.puts"] - before
            yield from pe.barrier_all()
            return delta

        result = run_shmem(prog, npes=2)
        assert result.app_results[0] == 1  # one coalesced put

    def test_bad_stride_rejected(self):
        def prog(pe):
            src = pe.shmalloc(8)
            with pytest.raises(ShmemError):
                yield from pe.iput(0, src, src, 0, 1, 1)
            yield from pe.barrier_all()
            return True

        assert all(run_shmem(prog, npes=2).app_results)

"""Calendar-queue scheduler and aggregate-wave edge cases.

Every test here runs the same workload twice — once on the calendar
queue, once on the reference binary heap — and asserts the recorded
dispatch order is **identical**.  The calendar queue is a pure
constant-factor optimisation; any divergence is a bug by definition.

The edges covered are exactly the ones where a bucketed scheduler can
go wrong:

* same-tick interleaving of ``_call_soon`` microtasks and timed events;
* event times landing exactly on bucket (day) boundaries;
* far-future timeouts that live in the overflow heap and must migrate
  back in as the clock approaches;
* wave members cancelled mid-dispatch (from an earlier member of the
  same wave);
* a seeded random storm mixing all of the above.
"""

import random

import pytest

from repro.sim import CalendarQueue, HeapQueue, Simulator, Wave, spawn
from repro.sim.calendar import WAVE_KEY_DTYPE

import numpy as np

SCHEDULERS = ("heap", "calendar")


def _run_both(build, **sim_kwargs):
    """Run ``build(sim, log)`` under both schedulers; return both logs."""
    logs = {}
    for scheduler in SCHEDULERS:
        sim = Simulator(scheduler=scheduler, **sim_kwargs)
        log = []
        build(sim, log)
        sim.run()
        logs[scheduler] = log
    assert logs["heap"] == logs["calendar"]
    return logs["heap"]


# ----------------------------------------------------------------------
# same-tick ordering: microtasks vs timed events
# ----------------------------------------------------------------------
def test_same_tick_call_soon_vs_scheduled():
    """A microtask and a timed event due at the same instant dispatch
    in seq order, whichever queue they sit in."""

    def build(sim, log):
        def proc(sim, tag):
            yield 1.0
            log.append((sim.now, "timed", tag))
            yield 0.0  # _call_soon continuation at t=1.0
            log.append((sim.now, "micro", tag))

        for tag in ("a", "b", "c"):
            spawn(sim, proc(sim, tag), name=tag)
        # A bare timed event at the same instant as the continuations.
        sim._schedule_at(1.0, lambda _a: log.append((sim.now, "timed", "x")))

    log = _run_both(build)
    assert [e[0] for e in log] == [1.0] * len(log)


def test_zero_delay_storm_interleaves_with_timed():
    def build(sim, log):
        def ticker(sim):
            for i in range(5):
                yield 1.0
                log.append((sim.now, "tick", i))

        def spinner(sim, tag):
            for i in range(10):
                yield 0.5
                log.append((sim.now, tag, i))
                yield 0.0
                log.append((sim.now, tag + "+", i))

        spawn(sim, ticker(sim), name="ticker")
        spawn(sim, spinner(sim, "s1"), name="s1")
        spawn(sim, spinner(sim, "s2"), name="s2")

    _run_both(build)


# ----------------------------------------------------------------------
# bucket boundaries
# ----------------------------------------------------------------------
def test_bucket_boundary_times():
    """Times exactly on, just below, and just above day boundaries.

    width_us=8 makes day boundaries land at 8, 16, 24... — the test
    schedules pairs straddling each boundary plus events exactly on it.
    """

    def build(sim, log):
        times = [7.999, 8.0, 8.001, 15.999, 16.0, 16.001, 24.0, 24.0,
                 31.999, 32.0]
        for i, t in enumerate(times):
            sim._schedule_at(t, lambda _a, i=i, t=t: log.append((t, i)))

    log = _run_both(build, calendar_width_us=8.0)
    assert log == sorted(log)
    assert len(log) == 10


def test_boundary_insert_into_current_day():
    """An insert landing in the *current* day (or earlier, from float
    rounding at a boundary) goes straight into the near heap and still
    dispatches in (time, seq) order."""

    def build(sim, log):
        def proc(sim):
            yield 8.0  # advance to a day boundary (width 8)
            log.append((sim.now, "arrived"))
            # Schedule at now and at now + sub-day offsets: all within
            # the day being drained.
            sim._schedule_at(sim.now, lambda _a: log.append((sim.now, "now")))
            sim._schedule_at(sim.now + 0.5,
                             lambda _a: log.append((sim.now, "half")))
            yield 1.0
            log.append((sim.now, "after"))

        spawn(sim, proc(sim), name="p")

    log = _run_both(build, calendar_width_us=8.0)
    assert [e[1] for e in log] == ["arrived", "now", "half", "after"]


# ----------------------------------------------------------------------
# overflow heap (far-future timeouts)
# ----------------------------------------------------------------------
def test_far_future_timeout_in_overflow():
    """Delays beyond width*horizon go to the overflow heap and must
    migrate back into the calendar as the clock approaches."""

    def build(sim, log):
        def patient(sim):
            yield 10_000.0  # way past the 4*2=8us horizon
            log.append((sim.now, "patient"))

        def busy(sim):
            for i in range(20):
                yield 1.0
                log.append((sim.now, "busy", i))

        spawn(sim, patient(sim), name="patient")
        spawn(sim, busy(sim), name="busy")

    log = _run_both(build, calendar_width_us=2.0, calendar_horizon_days=4)
    assert log[-1] == (10_000.0, "patient")


def test_overflow_only_advance():
    """The calendar can advance with *nothing* in the day buckets —
    straight from one overflow day to the next."""

    def build(sim, log):
        for t in (1e6, 2e6, 2e6 + 0.5, 3e6):
            sim._schedule_at(t, lambda _a, t=t: log.append(t))

    log = _run_both(build, calendar_width_us=1.0, calendar_horizon_days=2)
    assert log == [1e6, 2e6, 2e6 + 0.5, 3e6]


def test_overflow_merges_with_bucket_day():
    """An overflow entry whose day also holds bucketed entries must
    merge into that day's near heap in (time, seq) order."""

    def build(sim, log):
        def proc(sim):
            # First hop lands within the horizon; second is overflow at
            # schedule time but shares its eventual day with near-term
            # events scheduled later.
            yield 3.0
            log.append((sim.now, "hop"))
            sim._schedule_at(100.25, lambda _a: log.append((sim.now, "late")))
            yield 97.0  # due 100.0 — same day as the overflow entry
            log.append((sim.now, "sleeper"))

        spawn(sim, proc(sim), name="p")
        sim._schedule_at(100.5, lambda _a: log.append((sim.now, "edge")))

    log = _run_both(build, calendar_width_us=2.0, calendar_horizon_days=8)
    assert [e[1] for e in log] == ["hop", "sleeper", "late", "edge"]


# ----------------------------------------------------------------------
# waves: batching, affine times, cancellation
# ----------------------------------------------------------------------
def test_uniform_wave_matches_individual_schedules():
    """One N-member wave dispatches byte-identically to N separate
    ``_schedule_at`` calls (same contiguous seq block, same order)."""

    def build_wave(sim, log):
        sim.schedule_wave(5.0, lambda i: log.append((sim.now, i)),
                          list(range(8)))

    def build_loop(sim, log):
        for i in range(8):
            sim._schedule_at(5.0, lambda _a, i=i: log.append((sim.now, i)))

    logs = {}
    for name, build in (("wave", build_wave), ("loop", build_loop)):
        sim = Simulator()
        log = []
        build(sim, log)
        sim.run()
        logs[name] = log
    assert logs["wave"] == logs["loop"]


def test_affine_wave_interleaves_like_individual_entries():
    """Members at distinct times re-arm under their reserved keys, so
    foreign events scheduled between member times interleave exactly
    as they would against independent entries."""
    whens = np.array([10.0, 10.0, 12.0, 14.0])

    def build_wave(sim, log):
        sim.schedule_wave(whens, lambda i: log.append((sim.now, "m", i)),
                          list(range(4)))
        for t in (9.0, 11.0, 13.0, 15.0):
            sim._schedule_at(t, lambda _a, t=t: log.append((t, "f", t)))

    def build_loop(sim, log):
        for i, w in enumerate(whens):
            sim._schedule_at(float(w),
                             lambda _a, i=i: log.append((sim.now, "m", i)))
        for t in (9.0, 11.0, 13.0, 15.0):
            sim._schedule_at(t, lambda _a, t=t: log.append((t, "f", t)))

    logs = {}
    for name, build in (("wave", build_wave), ("loop", build_loop)):
        sim = Simulator()
        log = []
        build(sim, log)
        sim.run()
        logs[name] = log
    assert logs["wave"] == logs["loop"]
    assert [e[1:] for e in logs["wave"]] == [
        ("f", 9.0), ("m", 0), ("m", 1), ("f", 11.0), ("m", 2),
        ("f", 13.0), ("m", 3), ("f", 15.0)]


def test_wave_rejects_decreasing_times():
    sim = Simulator()
    with pytest.raises(Exception):
        sim.schedule_wave(np.array([5.0, 4.0]), lambda i: None, [0, 1])


def test_cancel_batched_member_mid_wave():
    """Member 0's callback cancels member 2 *while the wave is being
    dispatched*: the slot is skipped, identically (same survivors, same
    order) to a per-entry schedule whose member-2 callback checks a
    cancelled flag."""

    def survivors_with_wave():
        sim = Simulator()
        log = []
        wave_box = []

        def member(i):
            if i == 0:
                wave_box[0].cancel(2)
            log.append((sim.now, i))

        wave_box.append(
            sim.schedule_wave(3.0, member, list(range(5))))
        sim.run()
        return log

    def survivors_with_loop():
        sim = Simulator()
        log = []
        cancelled = set()

        def member(_a, i):
            if i in cancelled:
                return
            if i == 0:
                cancelled.add(2)
            log.append((sim.now, i))

        for i in range(5):
            sim._schedule_at(3.0, lambda _a, i=i: member(_a, i))
        sim.run()
        return log

    assert survivors_with_wave() == survivors_with_loop()
    assert [i for _, i in survivors_with_wave()] == [0, 1, 3, 4]


def test_cancel_after_dispatch_returns_false():
    sim = Simulator()
    hits = []
    wave = sim.schedule_wave(1.0, hits.append, [0, 1, 2])
    sim.run()
    assert hits == [0, 1, 2]
    assert wave.cancel(1) is False
    with pytest.raises(IndexError):
        wave.cancel(3)


def test_cancel_pending_affine_member():
    """Cancelling a not-yet-due member of an affine wave skips it when
    its time arrives."""
    sim = Simulator()
    log = []
    wave = sim.schedule_wave(
        np.array([1.0, 2.0, 3.0]),
        lambda i: log.append((sim.now, i)), [0, 1, 2])
    assert wave.cancel(1) is True
    sim.run()
    assert log == [(1.0, 0), (3.0, 2)]


def test_wave_pending_events_accounting():
    sim = Simulator()
    wave = sim.schedule_wave(1.0, lambda i: None, list(range(6)))
    assert sim.pending_events == 6
    sim.run()
    assert sim.pending_events == 0
    assert wave.dispatched == 6
    assert wave.pending == 0


# ----------------------------------------------------------------------
# randomized storm
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [7, 1234])
def test_randomized_storm_byte_identical(seed):
    """A seeded mess of sleeps, zero-delays, events, far timeouts and
    waves dispatches identically under both schedulers."""

    def build(sim, log):
        rng = random.Random(seed)

        def worker(sim, tag):
            for i in range(rng.randrange(5, 15)):
                roll = rng.random()
                if roll < 0.4:
                    yield rng.choice([0.25, 1.0, 3.0, 7.5, 512.0, 513.0])
                elif roll < 0.6:
                    yield 0.0
                elif roll < 0.8:
                    ev = sim.event()
                    sim._schedule_at(
                        sim.now + rng.choice([0.5, 2.0, 5000.0]),
                        lambda _a, ev=ev: ev.succeed())
                    yield ev
                else:
                    yield float(rng.randrange(1, 4) * 8)  # boundary-ish
                log.append((sim.now, tag, i))

        for w in range(6):
            spawn(sim, worker(sim, f"w{w}"), name=f"w{w}")
        # A couple of waves dropped in at deterministic points.
        sim.schedule_wave(4.0, lambda i: log.append((4.0, "wave0", i)),
                          list(range(4)))
        sim.schedule_wave(
            np.array([16.0, 16.0, 24.0]),
            lambda i: log.append((sim.now, "wave1", i)), [0, 1, 2])

    _run_both(build, calendar_width_us=8.0, calendar_horizon_days=16)


# ----------------------------------------------------------------------
# queue-level unit checks (no simulator)
# ----------------------------------------------------------------------
def test_calendar_queue_len_and_order():
    cq = CalendarQueue(width_us=4.0, horizon_days=4)
    hq = HeapQueue()
    entries = [(12.5, 1), (0.5, 2), (100.0, 3), (3.999, 4), (4.0, 5),
               (100.0, 6), (7.5, 7)]
    for when, seq in entries:
        cq.push(when, seq, None, None)
        hq.push(when, seq, None, None)
    assert len(cq) == len(hq) == len(entries)
    popped = []
    while True:
        head = cq.head()
        if head is None:
            break
        assert head == cq.near[0]
        popped.append(cq.pop_head()[:2])
    assert popped == sorted(entries)
    assert len(cq) == 0


def test_calendar_queue_rejects_bad_knobs():
    with pytest.raises(ValueError):
        CalendarQueue(width_us=0.0)
    with pytest.raises(ValueError):
        CalendarQueue(horizon_days=0)


def test_simulator_rejects_unknown_scheduler():
    with pytest.raises(ValueError):
        Simulator(scheduler="fibonacci")


def test_wave_key_dtype_layout():
    assert WAVE_KEY_DTYPE.names == ("when", "seq")
    assert Wave.__name__ == "Wave"  # exported and importable

"""Unit tests for the DES event loop and waitables."""

import pytest

from repro.sim import SimEvent, SimulationError, Simulator, spawn


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(5.0)
        fired.append(sim.now)
        yield sim.timeout(2.5)
        fired.append(sim.now)

    spawn(sim, proc(sim), name="t")
    sim.run()
    assert fired == [5.0, 7.5]
    assert sim.now == 7.5


def test_timeout_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc(sim):
        v = yield sim.timeout(1.0, value="payload")
        got.append(v)

    spawn(sim, proc(sim))
    sim.run()
    assert got == ["payload"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def maker(tag):
        def proc(sim):
            yield sim.timeout(3.0)
            order.append(tag)
        return proc

    for tag in ["a", "b", "c", "d"]:
        spawn(sim, maker(tag)(sim), name=tag)
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim):
        got.append((yield ev))

    def firer(sim):
        yield sim.timeout(10.0)
        ev.succeed(42)

    spawn(sim, waiter(sim))
    spawn(sim, firer(sim))
    sim.run()
    assert got == [42]
    assert ev.ok and ev.value == 42


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def firer(sim):
        yield sim.timeout(1.0)
        ev.fail(ValueError("boom"))

    spawn(sim, waiter(sim))
    spawn(sim, firer(sim))
    sim.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not-an-exception")


def test_value_access_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_callback_after_trigger_still_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("late")
    sim.run()  # dispatch original (empty) callbacks
    seen = []
    ev.add_callback(lambda w: seen.append(w.value))
    sim.run()
    assert seen == ["late"]


def test_any_of_returns_first_child():
    sim = Simulator()
    results = []

    def proc(sim):
        slow = sim.timeout(100.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        child, value = yield sim.any_of([slow, fast])
        results.append((value, sim.now))

    spawn(sim, proc(sim))
    sim.run()
    assert results == [("fast", 1.0)]


def test_all_of_waits_for_every_child():
    sim = Simulator()
    results = []

    def proc(sim):
        values = yield sim.all_of(
            [sim.timeout(3.0, value="a"), sim.timeout(7.0, value="b")]
        )
        results.append((values, sim.now))

    spawn(sim, proc(sim))
    sim.run()
    assert results == [(["a", "b"], 7.0)]


def test_composite_empty_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.any_of([])
    with pytest.raises(ValueError):
        sim.all_of([])


def test_run_until_stops_early():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(10.0)
        fired.append("late")

    spawn(sim, proc(sim))
    end = sim.run(until=5.0)
    assert end == 5.0
    assert fired == []
    sim.run()
    assert fired == ["late"]


def test_run_until_in_past_rejected():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10.0)

    spawn(sim, proc(sim))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_schedule_in_past_rejected():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)

    spawn(sim, proc(sim))
    sim.run()
    with pytest.raises(SimulationError):
        sim._schedule_at(1.0, lambda a: None)


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(4.0)
        sim.call_soon(lambda: seen.append(sim.now))
        yield sim.timeout(0.0)

    spawn(sim, proc(sim))
    sim.run()
    assert seen == [4.0]

"""Tests for the fast-path kernel: microtask queue, plain-float
sleeps, lazy callback storage and the opt-in profiler."""

import pytest

from repro.sim import (
    KernelProfile,
    ProcessFailure,
    SimulationError,
    Simulator,
    spawn,
)


# ----------------------------------------------------------------------
# step() on an empty simulator
# ----------------------------------------------------------------------
def test_step_empty_raises_simulation_error():
    sim = Simulator()
    with pytest.raises(SimulationError, match="no pending events"):
        sim.step()


def test_step_drained_raises_simulation_error():
    sim = Simulator()

    def proc(sim):
        yield 1.0

    spawn(sim, proc(sim), name="p")
    sim.run()
    with pytest.raises(SimulationError, match="no pending events"):
        sim.step()


# ----------------------------------------------------------------------
# microtask queue ordering
# ----------------------------------------------------------------------
def test_call_soon_runs_in_fifo_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.call_soon(lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_microtasks_interleave_with_same_time_heap_events_by_seq():
    """A heap event scheduled *before* a microtask at the same simulated
    time must run first (sequence numbers are shared between paths)."""
    sim = Simulator()
    order = []
    sim._schedule_at(0.0, lambda _a: order.append("heap-1"), None)
    sim._call_soon(lambda _a: order.append("micro-1"), None)
    sim._schedule_at(0.0, lambda _a: order.append("heap-2"), None)
    sim._call_soon(lambda _a: order.append("micro-2"), None)
    sim.run()
    assert order == ["heap-1", "micro-1", "heap-2", "micro-2"]


def test_step_matches_run_ordering():
    """Draining with step() is indistinguishable from run()."""

    def build():
        sim = Simulator()
        order = []
        sim.call_soon(lambda: order.append("a"))
        sim._schedule_at(0.0, lambda _a: order.append("b"), None)
        sim._schedule_at(2.0, lambda _a: order.append("c"), None)
        sim.call_soon(lambda: order.append("d"))
        return sim, order

    sim_run, order_run = build()
    sim_run.run()

    sim_step, order_step = build()
    while sim_step.pending_events:
        sim_step.step()

    assert order_run == order_step == ["a", "b", "d", "c"]
    assert sim_step.now == sim_run.now == 2.0


def test_microtask_does_not_advance_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield 3.0
        sim.call_soon(lambda: seen.append(sim.now))
        yield 0.0  # zero-delay fast path: same timestamp
        seen.append(sim.now)

    spawn(sim, proc(sim), name="p")
    sim.run()
    assert seen == [3.0, 3.0]


# ----------------------------------------------------------------------
# yield <float> fast path
# ----------------------------------------------------------------------
def test_yield_float_sleeps_like_timeout():
    sim = Simulator()
    ticks = []

    def proc(sim):
        got = yield 5.0
        ticks.append((sim.now, got))
        got = yield 2.5
        ticks.append((sim.now, got))

    spawn(sim, proc(sim), name="p")
    sim.run()
    assert ticks == [(5.0, None), (7.5, None)]


def test_yield_negative_float_raises_in_process():
    sim = Simulator()
    caught = []

    def proc(sim):
        try:
            yield -1.0
        except ValueError as exc:
            caught.append(str(exc))

    spawn(sim, proc(sim), name="p")
    sim.run()
    assert caught and "negative" in caught[0]


def test_yield_int_still_rejected():
    """The fast path accepts exactly ``float``; an int yield remains a
    non-waitable kernel error (catches stray returns)."""
    sim = Simulator()

    def proc(sim):
        yield 42

    spawn(sim, proc(sim), name="p")
    with pytest.raises(ProcessFailure):
        sim.run()


def test_yield_float_and_timeout_orders_identically():
    """Processes sleeping via the fast path and via Timeout objects for
    the same durations wake in the same scheduling order."""

    def run_variant(use_fast):
        sim = Simulator()
        order = []

        def sleeper(sim, tag, delay):
            if use_fast:
                yield delay
            else:
                yield sim.timeout(delay)
            order.append(tag)

        spawn(sim, sleeper(sim, "a", 2.0), name="a")
        spawn(sim, sleeper(sim, "b", 1.0), name="b")
        spawn(sim, sleeper(sim, "c", 2.0), name="c")
        sim.run()
        return order

    assert run_variant(True) == run_variant(False) == ["b", "a", "c"]


# ----------------------------------------------------------------------
# composite callback detach (leak regression)
# ----------------------------------------------------------------------
def _callback_count(waitable):
    cbs = waitable.callbacks
    if cbs is None:
        return 0
    if cbs.__class__ is list:
        return len(cbs)
    return 1


def test_anyof_detaches_from_losing_children():
    """A triggered AnyOf must unregister from children that did not
    fire — the on-demand conduit's retry loop creates an AnyOf per
    attempt over the same long-lived event, so leaked registrations
    would grow without bound."""
    sim = Simulator()
    long_lived = sim.event()

    def attempt(sim, ev):
        t = sim.timeout(1.0)
        yield sim.any_of([ev, t])

    for _ in range(10):
        spawn(sim, attempt(sim, long_lived), name="try")
        sim.run()
        assert not long_lived.triggered

    # Every AnyOf timed out; none may linger on the event.
    assert _callback_count(long_lived) == 0


def test_allof_detaches_on_child_failure():
    sim = Simulator()
    survivor = sim.event()

    def proc(sim):
        bad = sim.event()
        comp = sim.all_of([bad, survivor])
        sim.call_soon(lambda: bad.fail(RuntimeError("boom")))
        try:
            yield comp
        except RuntimeError:
            pass

    spawn(sim, proc(sim), name="p")
    sim.run()
    assert _callback_count(survivor) == 0


def test_anyof_winner_value_still_delivered():
    sim = Simulator()
    results = []

    def proc(sim):
        ev = sim.event()
        t = sim.timeout(1.0)
        sim.call_soon(lambda: ev.succeed("won"))
        which, value = yield sim.any_of([ev, t])
        results.append((which is ev, value))

    spawn(sim, proc(sim), name="p")
    sim.run()
    assert results == [(True, "won")]


def test_late_add_callback_fires_via_queue():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(7)
    got = []
    ev.add_callback(lambda w: got.append(w.value))
    assert got == []  # run-to-completion: not synchronous
    sim.run()
    assert got == [7]


# ----------------------------------------------------------------------
# profiling counters
# ----------------------------------------------------------------------
def test_kernel_profile_counts_paths():
    sim = Simulator()
    prof = KernelProfile().attach(sim)

    def proc(sim):
        yield 1.0          # heap
        yield 0.0          # microtask
        ev = sim.event()
        sim.call_soon(lambda: ev.succeed())  # microtasks
        yield ev

    spawn(sim, proc(sim), name="p")
    sim.run()
    snap = prof.snapshot()
    assert snap["heap_scheduled"] >= 1
    assert snap["micro_scheduled"] >= 3
    assert snap["events_scheduled"] == (
        snap["heap_scheduled"] + snap["micro_scheduled"]
    )
    assert snap["events_dispatched"] == snap["events_scheduled"]
    assert 0.0 < snap["micro_ratio"] < 1.0
    assert any("Process" in k for k in snap["by_module"])


def test_kernel_profile_detach_stops_counting():
    sim = Simulator()
    prof = KernelProfile().attach(sim)
    sim.call_soon(lambda: None)
    prof.detach()
    sim.call_soon(lambda: None)
    sim.run()
    assert prof.events_scheduled == 1


def test_kernel_profile_detach_freezes_dispatched_count():
    sim = Simulator()
    prof = KernelProfile().attach(sim)
    for _ in range(3):
        sim.call_soon(lambda: None)
    # Detached with all three callbacks still pending: dispatched must
    # report 0 — and keep reporting 0 after the sim drains, because the
    # pending count was frozen at detach time.
    prof.detach()
    assert prof.events_scheduled == 3
    assert prof.events_dispatched == 0
    sim.run()
    assert prof.events_dispatched == 0
    assert prof.snapshot()["events_dispatched"] == 0


def test_kernel_profile_dispatched_tracks_pending_while_attached():
    sim = Simulator()
    prof = KernelProfile().attach(sim)
    sim.call_soon(lambda: None)
    assert prof.events_dispatched == 0
    sim.run()
    assert prof.events_dispatched == 1

"""Golden-trace determinism regression.

Replays a 128-PE on-demand startup and compares the full protocol
trace — every active message, connection request/serve/established,
put and get, with exact timestamps — byte-for-byte against a fixture
captured *before* the fast-path kernel work (microtask queue, plain
``__slots__`` messages, yield-float sleeps, lazy callback storage,
synchronous process resume, lazy heap backing).

Any scheduling-order or cost-model drift introduced by a kernel
optimisation shows up here as a diff, not as a silently different
simulation.  If you change the *model* deliberately, regenerate the
fixture::

    PYTHONPATH=src python - <<'EOF'
    from repro.apps import HelloWorld
    from repro.cluster import cluster_b
    from repro.core import Job, RuntimeConfig
    job = Job(npes=128, config=RuntimeConfig.proposed(),
              cluster=cluster_b(128, ppn=16), trace=True)
    job.run(HelloWorld())
    with open("tests/data/golden_trace_ondemand_128.txt", "w") as fh:
        fh.write("\n".join(job.tracer.formatted()) + "\n")
    EOF
"""

from pathlib import Path

import pytest

from repro.apps import HelloWorld
from repro.cluster import cluster_b
from repro.core import Job, RuntimeConfig
from repro.gasnet import LifecyclePolicy

FIXTURE = Path(__file__).parent.parent / "data" / "golden_trace_ondemand_128.txt"


@pytest.mark.parametrize("lifecycle", [
    None, LifecyclePolicy(enabled=False),
], ids=["no-policy", "policy-disabled"])
def test_ondemand_startup_trace_matches_golden_fixture(lifecycle):
    """The pre-lifecycle golden trace, byte for byte.

    The ``policy-disabled`` variant pins the lifecycle machinery's
    off-path cost to zero: a compiled-in-but-disabled policy must not
    shift a single timestamp or reorder a single message.
    """
    job = Job(
        npes=128,
        config=RuntimeConfig.proposed(lifecycle=lifecycle),
        cluster=cluster_b(128, ppn=16),
        trace=True,
    )
    job.run(HelloWorld())
    got = job.tracer.formatted()
    want = FIXTURE.read_text().splitlines()

    # Pinpoint the first divergence before the full comparison so a
    # regression reports *where* the schedule drifted, not just "lists
    # differ" over ~1200 lines.
    for i, (g, w) in enumerate(zip(got, want)):
        assert g == w, f"trace diverges at line {i + 1}:\n  got:  {g}\n  want: {w}"
    assert len(got) == len(want), (
        f"trace length changed: got {len(got)} lines, fixture has {len(want)}"
    )


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
@pytest.mark.parametrize("observe", [
    False, {"timeline": True},
], ids=["unobserved", "timeline"])
def test_trace_is_byte_identical_with_timeline_sampling(scheduler, observe):
    """The timeline sampler has zero effect on simulated time.

    Its tick events consume sequence numbers, but seq only breaks
    same-time ties and the probes are pure reads — so the golden trace
    must stay byte-identical with sampling on, under both schedulers.
    """
    job = Job(
        npes=128,
        config=RuntimeConfig.proposed(),
        cluster=cluster_b(128, ppn=16),
        trace=True,
        observe=observe,
        scheduler=scheduler,
    )
    result = job.run(HelloWorld())
    got = job.tracer.formatted()
    want = FIXTURE.read_text().splitlines()
    for i, (g, w) in enumerate(zip(got, want)):
        assert g == w, (
            f"trace diverges at line {i + 1} "
            f"(scheduler={scheduler}, observe={observe}):\n"
            f"  got:  {g}\n  want: {w}"
        )
    assert len(got) == len(want)
    if observe:
        timeline = result.telemetry["timeline"]
        assert timeline["samples"] > 0
        assert timeline["series"]["conduit.connections"]["t"]

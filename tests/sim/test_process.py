"""Unit tests for generator-coroutine processes."""

import pytest

from repro.sim import ProcessFailure, SimulationError, Simulator, spawn


def test_process_return_value_via_join():
    sim = Simulator()
    got = []

    def child(sim):
        yield sim.timeout(2.0)
        return 99

    def parent(sim):
        proc = spawn(sim, child(sim), name="child")
        got.append((yield proc))

    spawn(sim, parent(sim), name="parent")
    sim.run()
    assert got == [99]


def test_join_already_finished_process():
    sim = Simulator()
    got = []

    def child(sim):
        yield sim.timeout(1.0)
        return "done"

    def parent(sim):
        proc = spawn(sim, child(sim))
        yield sim.timeout(50.0)  # child finishes long before
        got.append((yield proc))

    spawn(sim, parent(sim))
    sim.run()
    assert got == ["done"]


def test_child_exception_propagates_to_joiner():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1.0)
        raise KeyError("inner")

    def parent(sim):
        proc = spawn(sim, child(sim), name="bad-child")
        try:
            yield proc
        except KeyError as exc:
            caught.append(exc.args[0])

    spawn(sim, parent(sim))
    sim.run()
    assert caught == ["inner"]


def test_unjoined_exception_aborts_run():
    sim = Simulator()

    def lonely(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("nobody is listening")

    spawn(sim, lonely(sim), name="lonely")
    with pytest.raises(ProcessFailure) as info:
        sim.run()
    assert "lonely" in str(info.value)
    assert isinstance(info.value.cause, RuntimeError)


def test_yield_non_waitable_is_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    def parent(sim):
        p = spawn(sim, bad(sim), name="bad")
        with pytest.raises(SimulationError):
            yield p

    spawn(sim, parent(sim))
    sim.run()


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        spawn(sim, lambda: None)


def test_many_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def worker(sim, pid, period):
        for _ in range(3):
            yield sim.timeout(period)
            log.append((sim.now, pid))

    for pid, period in [(0, 3.0), (1, 5.0), (2, 7.0)]:
        spawn(sim, worker(sim, pid, period), name=f"w{pid}")
    sim.run()
    assert log == sorted(log, key=lambda pair: pair[0])
    assert len(log) == 9
    assert sim.now == 21.0


def test_process_tree_fan_out_fan_in():
    sim = Simulator()

    def leaf(sim, n):
        yield sim.timeout(float(n))
        return n * n

    def root(sim):
        children = [spawn(sim, leaf(sim, n)) for n in range(1, 6)]
        values = yield sim.all_of(children)
        return sum(values)

    results = []

    def main(sim):
        results.append((yield spawn(sim, root(sim))))

    spawn(sim, main(sim))
    sim.run()
    assert results == [1 + 4 + 9 + 16 + 25]

"""Unit tests for RNG streams and tracing helpers."""

import pytest

from repro.sim import Counters, PhaseTimer, RngRegistry, Simulator, Tracer, spawn


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(7)
        assert reg.stream("ud-loss") is reg.stream("ud-loss")

    def test_reproducible_across_registries(self):
        a = RngRegistry(7).stream("x").random(5)
        b = RngRegistry(7).stream("x").random(5)
        assert (a == b).all()

    def test_different_names_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("a").random(5)
        b = reg.stream("b").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random(5)
        b = RngRegistry(2).stream("x").random(5)
        assert not (a == b).all()

    def test_fork_is_independent(self):
        reg = RngRegistry(7)
        forked = reg.fork("child")
        a = reg.stream("x").random(5)
        b = forked.stream("x").random(5)
        assert not (a == b).all()

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(-1)


class TestCounters:
    def test_default_zero_and_add(self):
        c = Counters()
        assert c["nope"] == 0
        c.add("qp", 3)
        c.add("qp")
        assert c["qp"] == 4
        assert c.as_dict() == {"qp": 4}
        c.reset()
        assert c["qp"] == 0


class TestPhaseTimer:
    def test_breakdown_accumulates_simulated_time(self):
        sim = Simulator()
        timer = PhaseTimer(sim)

        def proc(sim):
            timer.begin("alpha")
            yield sim.timeout(5.0)
            timer.begin("beta")  # implicitly ends alpha
            yield sim.timeout(3.0)
            timer.begin("alpha")
            yield sim.timeout(2.0)
            timer.stop()

        spawn(sim, proc(sim))
        sim.run()
        bd = timer.breakdown()
        assert bd == {"alpha": 7.0, "beta": 3.0}

    def test_total_of_open_phase_includes_elapsed(self):
        sim = Simulator()
        timer = PhaseTimer(sim)
        observed = []

        def proc(sim):
            timer.begin("x")
            yield sim.timeout(4.0)
            observed.append(timer.total("x"))
            yield sim.timeout(1.0)
            timer.stop()

        spawn(sim, proc(sim))
        sim.run()
        assert observed == [4.0]
        assert timer.breakdown()["x"] == 5.0

    def test_observe_mirrors_phases_as_spans(self):
        from repro.obs import SpanTracer

        sim = Simulator()
        timer = PhaseTimer(sim)
        spans = SpanTracer(sim)
        root = spans.start("root", "pe0")

        def proc(sim):
            timer.observe(spans, "pe0", parent=root)
            timer.begin("alpha")
            yield sim.timeout(5.0)
            timer.begin("beta")
            yield sim.timeout(3.0)
            timer.stop()
            timer.observe(None, "")  # disarm
            timer.begin("gamma")
            yield sim.timeout(1.0)
            timer.stop()

        spawn(sim, proc(sim))
        sim.run()
        mirrored = [s for s in spans if s.parent_id == root.span_id]
        assert [(s.name, s.start_us, s.end_us) for s in mirrored] == [
            ("alpha", 0.0, 5.0), ("beta", 5.0, 8.0),
        ]
        # Phases after disarm leave no spans; accumulation is unchanged.
        assert spans.by_name("gamma") == []
        assert timer.breakdown() == {"alpha": 5.0, "beta": 3.0, "gamma": 1.0}


class TestTracer:
    def test_disabled_by_default(self):
        sim = Simulator()
        tr = Tracer(sim)
        tr.log("a", "kind")
        assert len(tr) == 0

    def test_records_time_and_filters_by_kind(self):
        sim = Simulator()
        tr = Tracer(sim, enabled=True)

        def proc(sim):
            yield sim.timeout(2.0)
            tr.log("pe0", "send", {"to": 1})
            yield sim.timeout(2.0)
            tr.log("pe1", "recv", {"frm": 0})

        spawn(sim, proc(sim))
        sim.run()
        assert len(tr) == 2
        sends = tr.of_kind("send")
        assert len(sends) == 1 and sends[0].time == 2.0 and sends[0].actor == "pe0"
        tr.clear()
        assert len(tr) == 0

    def test_capacity_bounds_memory(self):
        sim = Simulator()
        tr = Tracer(sim, capacity=10, enabled=True)
        for i in range(100):
            tr.log("a", "k", i)
        assert len(tr) == 10
        assert [r.detail for r in tr] == list(range(90, 100))

    def test_evictions_are_counted_not_silent(self):
        sim = Simulator()
        tr = Tracer(sim, capacity=10, enabled=True)
        for i in range(25):
            tr.log("a", "k", i)
        assert tr.dropped == 15
        assert tr.truncated

    def test_untruncated_log_has_no_header(self):
        sim = Simulator()
        tr = Tracer(sim, capacity=10, enabled=True)
        tr.log("a", "k", 1)
        assert tr.dropped == 0 and not tr.truncated
        assert tr.formatted() == ["0.0|a|k|1"]

    def test_formatted_announces_truncation(self):
        sim = Simulator()
        tr = Tracer(sim, capacity=3, enabled=True)
        for i in range(5):
            tr.log("a", "k", i)
        lines = tr.formatted()
        assert lines[0] == "# dropped 2 records (capacity 3)"
        assert len(lines) == 4  # header + the 3 surviving records

    def test_clear_resets_drop_count(self):
        sim = Simulator()
        tr = Tracer(sim, capacity=1, enabled=True)
        tr.log("a", "k", 1)
        tr.log("a", "k", 2)
        assert tr.dropped == 1
        tr.clear()
        assert len(tr) == 0 and tr.dropped == 0 and not tr.truncated

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), capacity=0)

"""Unit tests for mailboxes, semaphores, barriers and latches."""

import pytest

from repro.sim import Barrier, Latch, Mailbox, Semaphore, Simulator, spawn


class TestMailbox:
    def test_send_then_recv(self):
        sim = Simulator()
        mbox = Mailbox(sim)
        got = []

        def receiver(sim):
            got.append((yield mbox.recv()))

        mbox.send("hello")
        spawn(sim, receiver(sim))
        sim.run()
        assert got == ["hello"]

    def test_recv_blocks_until_send(self):
        sim = Simulator()
        mbox = Mailbox(sim)
        got = []

        def receiver(sim):
            msg = yield mbox.recv()
            got.append((msg, sim.now))

        def sender(sim):
            yield sim.timeout(9.0)
            mbox.send("late")

        spawn(sim, receiver(sim))
        spawn(sim, sender(sim))
        sim.run()
        assert got == [("late", 9.0)]

    def test_fifo_order_preserved(self):
        sim = Simulator()
        mbox = Mailbox(sim)
        got = []

        def receiver(sim):
            for _ in range(4):
                got.append((yield mbox.recv()))

        for i in range(4):
            mbox.send(i)
        spawn(sim, receiver(sim))
        sim.run()
        assert got == [0, 1, 2, 3]

    def test_multiple_waiters_woken_in_order(self):
        sim = Simulator()
        mbox = Mailbox(sim)
        got = []

        def receiver(sim, tag):
            msg = yield mbox.recv()
            got.append((tag, msg))

        spawn(sim, receiver(sim, "first"))
        spawn(sim, receiver(sim, "second"))

        def sender(sim):
            yield sim.timeout(1.0)
            mbox.send("m1")
            mbox.send("m2")

        spawn(sim, sender(sim))
        sim.run()
        assert got == [("first", "m1"), ("second", "m2")]

    def test_try_recv(self):
        sim = Simulator()
        mbox = Mailbox(sim)
        assert mbox.try_recv() is None
        mbox.send(7)
        assert len(mbox) == 1
        assert mbox.try_recv() == 7
        assert mbox.try_recv() is None


class TestSemaphore:
    def test_initial_value_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Semaphore(sim, value=-1)

    def test_mutual_exclusion(self):
        sim = Simulator()
        sem = Semaphore(sim, value=1)
        active = []
        max_active = []

        def worker(sim, wid):
            yield sem.acquire()
            active.append(wid)
            max_active.append(len(active))
            yield sim.timeout(5.0)
            active.remove(wid)
            sem.release()

        for wid in range(4):
            spawn(sim, worker(sim, wid))
        sim.run()
        assert max(max_active) == 1
        assert sim.now == 20.0  # fully serialized

    def test_counting_allows_n_concurrent(self):
        sim = Simulator()
        sem = Semaphore(sim, value=2)

        def worker(sim):
            yield sem.acquire()
            yield sim.timeout(5.0)
            sem.release()

        for _ in range(4):
            spawn(sim, worker(sim))
        sim.run()
        assert sim.now == 10.0  # two waves of two


class TestBarrier:
    def test_parties_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Barrier(sim, parties=0)

    def test_all_released_together(self):
        sim = Simulator()
        bar = Barrier(sim, parties=3)
        release_times = []

        def worker(sim, delay):
            yield sim.timeout(delay)
            gen = yield bar.wait()
            release_times.append((sim.now, gen))

        for delay in [1.0, 5.0, 9.0]:
            spawn(sim, worker(sim, delay))
        sim.run()
        assert [t for t, _ in release_times] == [9.0, 9.0, 9.0]
        assert {g for _, g in release_times} == {0}

    def test_barrier_is_reusable(self):
        sim = Simulator()
        bar = Barrier(sim, parties=2)
        gens = []

        def worker(sim, delay):
            yield sim.timeout(delay)
            gens.append((yield bar.wait()))
            yield sim.timeout(delay)
            gens.append((yield bar.wait()))

        spawn(sim, worker(sim, 1.0))
        spawn(sim, worker(sim, 2.0))
        sim.run()
        assert sorted(gens) == [0, 0, 1, 1]


class TestLatch:
    def test_zero_count_is_open(self):
        sim = Simulator()
        latch = Latch(sim, count=0)
        done = []

        def waiter(sim):
            yield latch.wait()
            done.append(sim.now)

        spawn(sim, waiter(sim))
        sim.run()
        assert done == [0.0]

    def test_count_down_opens(self):
        sim = Simulator()
        latch = Latch(sim, count=3)
        done = []

        def waiter(sim):
            yield latch.wait()
            done.append(sim.now)

        def ticker(sim):
            for _ in range(3):
                yield sim.timeout(2.0)
                latch.count_down()

        spawn(sim, waiter(sim))
        spawn(sim, ticker(sim))
        sim.run()
        assert done == [6.0]

    def test_overdraw_rejected(self):
        sim = Simulator()
        latch = Latch(sim, count=1)
        latch.count_down()
        with pytest.raises(RuntimeError):
            latch.count_down()

"""UPC-layer tests: shared arrays over the unified conduit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShmemError
from repro.upc import SharedArray, upc_all_reduce, upc_barrier

from ..shmem.conftest import run_shmem


class TestAffinityMath:
    def test_cyclic_layout_block_1(self):
        """shared double A[8] on 4 threads: element i -> thread i%4."""

        def prog(pe):
            arr = SharedArray(pe, total=8, block=1)
            yield from upc_barrier(pe)
            return [arr.owner_and_offset(i) for i in range(8)]

        result = run_shmem(prog, npes=4)
        mapping = result.app_results[0]
        assert mapping == [
            (0, 0), (1, 0), (2, 0), (3, 0), (0, 1), (1, 1), (2, 1), (3, 1),
        ]

    def test_blocked_layout(self):
        """shared [4] double A[16] on 2 threads."""

        def prog(pe):
            arr = SharedArray(pe, total=16, block=4)
            yield from upc_barrier(pe)
            return [arr.owner_and_offset(i)[0] for i in range(16)]

        result = run_shmem(prog, npes=2)
        owners = result.app_results[0]
        assert owners == [0] * 4 + [1] * 4 + [0] * 4 + [1] * 4

    def test_my_indices_partition(self):
        def prog(pe):
            arr = SharedArray(pe, total=13, block=3)
            yield from upc_barrier(pe)
            return arr.my_indices()

        result = run_shmem(prog, npes=3)
        union = sorted(i for idxs in result.app_results for i in idxs)
        assert union == list(range(13))

    def test_out_of_range(self):
        def prog(pe):
            arr = SharedArray(pe, total=4)
            with pytest.raises(ShmemError):
                arr.owner_and_offset(4)
            yield from upc_barrier(pe)
            return True

        assert all(run_shmem(prog, npes=2).app_results)


class TestRemoteAccess:
    def test_put_get_roundtrip_any_affinity(self):
        def prog(pe):
            arr = SharedArray(pe, total=12, block=2)
            yield from upc_barrier(pe)
            # Thread 0 writes every element; all threads read back.
            if pe.mype == 0:
                for i in range(12):
                    yield from arr.put(i, i * 1.5)
            yield from upc_barrier(pe)
            vals = []
            for i in range(12):
                v = yield from arr.get(i)
                vals.append(v)
            return vals

        result = run_shmem(prog, npes=4)
        expected = [i * 1.5 for i in range(12)]
        assert all(vals == expected for vals in result.app_results)

    def test_memput_memget_cross_affinity_runs(self):
        def prog(pe):
            arr = SharedArray(pe, total=20, block=3)
            yield from upc_barrier(pe)
            if pe.mype == 1:
                yield from arr.memput(2, np.arange(15, dtype=np.float64))
            yield from upc_barrier(pe)
            data = yield from arr.memget(2, 15)
            return data

        result = run_shmem(prog, npes=4)
        for data in result.app_results:
            assert np.allclose(data, np.arange(15))

    def test_local_affinity_is_direct(self):
        def prog(pe):
            arr = SharedArray(pe, total=8, block=1)
            yield from upc_barrier(pe)
            mine = arr.my_indices()
            for i in mine:
                yield from arr.put(i, float(i))
            view = arr.my_view()
            return list(view), [float(i) for i in mine]

        result = run_shmem(prog, npes=4)
        for got, expected in result.app_results:
            assert got == expected


class TestUpcCollectives:
    def test_all_reduce_sum(self):
        def prog(pe):
            yield from upc_barrier(pe)
            total = yield from upc_all_reduce(pe, float(pe.mype + 1))
            return total

        result = run_shmem(prog, npes=5)
        assert all(v == 15.0 for v in result.app_results)

    def test_all_reduce_max(self):
        def prog(pe):
            yield from upc_barrier(pe)
            total = yield from upc_all_reduce(
                pe, float((pe.mype * 7) % 5), op="max"
            )
            return total

        result = run_shmem(prog, npes=4)
        assert len(set(result.app_results)) == 1


class TestUpcStencil:
    def test_upc_style_stencil_relaxation(self):
        """A UPC idiom end-to-end: upc_forall-style owner-computes."""

        def prog(pe):
            n = 16
            arr = SharedArray(pe, total=n, block=2)
            yield from upc_barrier(pe)
            # init: A[i] = i, owner computes
            for i in arr.my_indices():
                yield from arr.put(i, float(i))
            yield from upc_barrier(pe)
            # one relaxation sweep: A[i] = (A[i-1]+A[i+1])/2, interior
            new = {}
            for i in arr.my_indices():
                if 0 < i < n - 1:
                    left = yield from arr.get(i - 1)
                    right = yield from arr.get(i + 1)
                    new[i] = (left + right) / 2.0
            yield from upc_barrier(pe)
            for i, v in new.items():
                yield from arr.put(i, v)
            yield from upc_barrier(pe)
            out = yield from arr.memget(0, n)
            return out

        result = run_shmem(prog, npes=4)
        expected = np.arange(16, dtype=float)  # linear field is a fixed point
        for out in result.app_results:
            assert np.allclose(out, expected)


class TestSharedArrayProperties:
    @given(
        total=st.integers(min_value=1, max_value=64),
        block=st.integers(min_value=1, max_value=9),
        threads=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_layout_invariants_without_running_sim(self, total, block, threads):
        """Pure affinity math: bijection between indices and slots."""

        class _FakePE:
            npes = threads
            mype = 0

            def shmalloc(self, size):
                return 0x1000

            def view(self, addr, dtype, count):  # pragma: no cover
                return np.zeros(count)

        arr = SharedArray(_FakePE(), total=total, block=block)
        slots = set()
        for i in range(total):
            owner, off = arr.owner_and_offset(i)
            assert 0 <= owner < threads
            assert off >= 0
            slots.add((owner, off))
        assert len(slots) == total  # injective: no two indices collide
